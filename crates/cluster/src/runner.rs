//! The cluster emulator: one OS thread per device, virtual-time links
//! between pipeline neighbours, deterministic timing, OOM faults and a
//! deadlock watchdog.
//!
//! This is the repository's stand-in for "real runs" on the paper's A100
//! cluster: the same instruction lists Mario emits are executed with real
//! concurrency and blocking p2p, so schedule bugs (mis-paired sends,
//! buffer-order deadlocks, activation-lifecycle leaks) manifest exactly as
//! they would on hardware, while per-instruction latencies come from the
//! cost model.

use crate::device::{DeviceReport, DeviceRuntime, TimelineEvent};
use crate::error::EmuError;
use crate::link::{link, RecvHalf, SendHalf};
use mario_ir::exec::MsgClass;
use mario_ir::{CostModel, DeviceId, InstrKind, Nanos, Schedule};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Emulator knobs.
#[derive(Debug, Clone, Copy)]
pub struct EmulatorConfig {
    /// Training iterations to execute back-to-back.
    pub iterations: u32,
    /// p2p buffer depth per link (1 = single pre-allocated comm buffer).
    pub channel_capacity: usize,
    /// Relative kernel-time jitter (0.0 = exact, deterministic timing).
    pub jitter: f64,
    /// Per-device straggler spread: each device gets a fixed slowdown
    /// factor in `[1, 1+spread]` (seeded), modeling the real-cluster
    /// heterogeneity the paper's simulator does not capture ("un-modeled
    /// behaviors" that make it slightly overestimate throughput, §6.6).
    pub straggler_spread: f64,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Per-device memory capacity in bytes (None disables OOM checking).
    pub mem_capacity: Option<u64>,
    /// Record a full per-instruction timeline.
    pub record_timeline: bool,
    /// Real-time watchdog for blocking ops — exceeded means deadlock.
    pub watchdog: Duration,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            iterations: 1,
            channel_capacity: 1,
            jitter: 0.0,
            straggler_spread: 0.0,
            seed: 42,
            mem_capacity: None,
            record_timeline: false,
            watchdog: Duration::from_secs(2),
        }
    }
}

/// Results of an emulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Virtual duration of the whole run (max device clock), ns.
    pub total_ns: Nanos,
    /// Virtual duration per iteration (total / iterations), ns.
    pub iter_ns: Nanos,
    /// Final virtual clock per device.
    pub device_clocks: Vec<Nanos>,
    /// Peak memory footprint per device, bytes.
    pub peak_mem: Vec<u64>,
    /// Merged instruction timeline (empty unless recording was enabled).
    pub timeline: Vec<TimelineEvent>,
}

impl RunReport {
    /// Training throughput in samples/s for a global batch of `samples`
    /// per iteration.
    pub fn throughput(&self, samples: u64) -> f64 {
        samples as f64 / (self.iter_ns as f64 / 1e9)
    }

    /// Peak memory across devices, bytes.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Minimum per-device peak, bytes (Table 5 reports `[min, max]`).
    pub fn min_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().min().unwrap_or(0)
    }
}

/// Runs `schedule` on the emulated cluster.
pub fn run(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
) -> Result<RunReport, EmuError> {
    let devices = schedule.devices() as usize;
    let rules = mario_ir::MemoryRules::new(schedule);

    // Discover which directed (sender, receiver, class) links exist.
    let mut send_ends: Vec<HashMap<(DeviceId, MsgClass, mario_ir::PartId), SendHalf>> =
        (0..devices).map(|_| HashMap::new()).collect();
    let mut recv_ends: Vec<HashMap<(DeviceId, MsgClass, mario_ir::PartId), RecvHalf>> =
        (0..devices).map(|_| HashMap::new()).collect();
    for prog in schedule.programs() {
        for (_, i) in prog.iter() {
            let (peer, class) = match i.kind {
                InstrKind::SendAct { peer } => (peer, MsgClass::Act),
                InstrKind::SendGrad { peer } => (peer, MsgClass::Grad),
                _ => continue,
            };
            let key_s = (peer, class, i.part);
            if !send_ends[prog.device.index()].contains_key(&key_s) {
                let (tx, rx) = link(cfg.channel_capacity, cfg.watchdog);
                send_ends[prog.device.index()].insert(key_s, tx);
                recv_ends[peer.index()].insert((prog.device, class, i.part), rx);
            }
        }
    }

    let mut results: Vec<Option<Result<DeviceReport, EmuError>>> =
        (0..devices).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(devices);
        for (d, (out, inp)) in send_ends
            .into_iter()
            .zip(recv_ends.into_iter())
            .enumerate()
        {
            let rules = &rules;
            let program = schedule.program(DeviceId(d as u32));
            handles.push(scope.spawn(move || {
                let mut rt = DeviceRuntime::new(
                    DeviceId(d as u32),
                    cost,
                    rules,
                    cfg.mem_capacity,
                    out,
                    inp,
                    cfg.jitter,
                    cfg.straggler_spread,
                    cfg.seed,
                    cfg.record_timeline,
                );
                for _ in 0..cfg.iterations {
                    rt.run_iteration(program)?;
                }
                Ok(rt.finish())
            }));
        }
        for (d, h) in handles.into_iter().enumerate() {
            results[d] = Some(h.join().expect("device thread panicked"));
        }
    });

    let mut reports = Vec::with_capacity(devices);
    let mut errors = Vec::new();
    for r in results.into_iter().flatten() {
        match r {
            Ok(rep) => reports.push(rep),
            Err(e) => errors.push(e),
        }
    }
    if let Some(first) = errors.iter().find(|e| e.is_oom()).or(errors.first()) {
        // Prefer reporting the root cause (OOM) over secondary
        // peer-failure/watchdog errors it triggered.
        return Err(first.clone());
    }

    let device_clocks: Vec<Nanos> = reports.iter().map(|r| r.clock).collect();
    let total_ns = device_clocks.iter().copied().max().unwrap_or(0);
    let mut timeline: Vec<TimelineEvent> = reports
        .iter()
        .flat_map(|r| r.timeline.iter().cloned())
        .collect();
    timeline.sort_by_key(|e| (e.start, e.device.0));
    Ok(RunReport {
        total_ns,
        iter_ns: total_ns / cfg.iterations as u64,
        device_clocks,
        peak_mem: reports.iter().map(|r| r.peak_mem).collect(),
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::UnitCost;
    use mario_schedules::{generate, ScheduleConfig};

    fn unit() -> UnitCost {
        UnitCost::paper_grid()
    }

    #[test]
    fn one_f_one_b_matches_closed_form_makespan() {
        // Free comm + unit grid: iteration time = 3(D-1) + 3N time units.
        for (d, n) in [(2u32, 4u32), (4, 8), (8, 8)] {
            let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, d, n));
            let r = run(&s, &unit(), EmulatorConfig::default()).unwrap();
            let expect = (3 * (d - 1) + 3 * n) as u64 * 1_000;
            assert_eq!(r.total_ns, expect, "D={d} N={n}");
        }
    }

    #[test]
    fn determinism_across_runs_and_interleavings() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::Chimera, 4, 8));
        let a = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        for _ in 0..5 {
            let b = run(&s, &unit(), EmulatorConfig::default()).unwrap();
            assert_eq!(a.device_clocks, b.device_clocks);
            assert_eq!(a.peak_mem, b.peak_mem);
        }
    }

    #[test]
    fn jitter_is_deterministic_given_seed() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let cfg = EmulatorConfig {
            jitter: 0.05,
            ..Default::default()
        };
        let a = run(&s, &unit(), cfg).unwrap();
        let b = run(&s, &unit(), cfg).unwrap();
        assert_eq!(a.device_clocks, b.device_clocks);
        // And differs from the exact run.
        let exact = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        assert_ne!(a.total_ns, exact.total_ns);
    }

    #[test]
    fn oom_is_detected_and_attributed() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::GPipe, 2, 8));
        // GPipe device 0 holds 8 activations of 1 byte each; cap at 4.
        let cfg = EmulatorConfig {
            mem_capacity: Some(4),
            watchdog: Duration::from_millis(300),
            ..Default::default()
        };
        let err = run(&s, &unit(), cfg).unwrap_err();
        assert!(err.is_oom(), "{err}");
    }

    #[test]
    fn peak_memory_matches_on_the_fly_profile() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let r = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        // UnitCost: 1 byte per live micro-batch, no static memory, zero
        // boundary bytes.
        assert_eq!(r.peak_mem, vec![4, 3, 2, 1]);
    }

    #[test]
    fn multiple_iterations_scale_linearly() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 4));
        let one = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        let three = run(
            &s,
            &unit(),
            EmulatorConfig {
                iterations: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // Back-to-back iterations may overlap slightly across the flush,
        // but per-iteration time must not exceed the single-iteration time.
        assert!(three.iter_ns <= one.total_ns);
        assert!(three.total_ns >= 2 * one.total_ns);
    }

    #[test]
    fn timeline_records_every_instruction() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 2, 2));
        let r = run(
            &s,
            &unit(),
            EmulatorConfig {
                record_timeline: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.timeline.len(), s.total_instrs());
        // Events are time-ordered.
        for w in r.timeline.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn all_schemes_run_to_completion() {
        use mario_ir::SchemeKind::*;
        for scheme in [GPipe, OneFOneB, Chimera, Interleave { chunks: 2 }] {
            let s = generate(ScheduleConfig::new(scheme, 4, 8));
            let r = run(&s, &unit(), EmulatorConfig::default()).unwrap();
            assert!(r.total_ns > 0, "{scheme:?}");
        }
        // The wave pipeline needs buffer depth 2 at D=8.
        let s = generate(ScheduleConfig::new(Wave { chunks: 2 }, 8, 16));
        let r = run(
            &s,
            &unit(),
            EmulatorConfig {
                channel_capacity: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.total_ns > 0);
    }

    #[test]
    fn throughput_helper() {
        let r = RunReport {
            total_ns: 2_000_000_000,
            iter_ns: 2_000_000_000,
            device_clocks: vec![],
            peak_mem: vec![10, 30, 20],
            timeline: vec![],
        };
        assert!((r.throughput(128) - 64.0).abs() < 1e-9);
        assert_eq!(r.max_peak_mem(), 30);
        assert_eq!(r.min_peak_mem(), 10);
    }
}
