//! The cluster emulator: one OS thread per device, virtual-time links
//! between pipeline neighbours, deterministic timing, OOM faults and a
//! deadlock watchdog.
//!
//! This is the repository's stand-in for "real runs" on the paper's A100
//! cluster: the same instruction lists Mario emits are executed with real
//! concurrency and blocking p2p, so schedule bugs (mis-paired sends,
//! buffer-order deadlocks, activation-lifecycle leaks) manifest exactly as
//! they would on hardware, while per-instruction latencies come from the
//! cost model. [`run_with_faults`] additionally threads a seeded
//! [`FaultPlan`] through the devices, and [`run_with_recovery`] restarts a
//! faulted run a bounded number of times (the checkpoint-restart loop a
//! real fleet scheduler would drive).

use crate::device::{CkptBoard, DeviceCtx, DeviceReport, DeviceRuntime, StallTable, TimelineEvent};
use crate::error::EmuError;
use crate::faults::{FaultPlan, FaultReport};
use crate::link::{link, RecvHalf, SendHalf};
use mario_ir::exec::MsgClass;
use mario_ir::{
    CheckpointPolicy, CostModel, DeviceId, InstrKind, Nanos, Schedule, SpanGraph, Telemetry,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Which executor [`run`] and friends drive.
///
/// Both consume the same instruction lists, the same `MemoryRules`
/// lifecycle, the same bounded-FIFO link semantics and the same
/// checkpoint arithmetic, and agree bit-for-bit on every clock,
/// telemetry class and fault report (the three-way parity proptests pin
/// this). They differ only in *how* virtual time advances.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmulatorBackend {
    /// One OS thread per device with blocking rendezvous links — the
    /// concurrency oracle. Real blocking means schedule bugs (deadlocks,
    /// mis-paired sends) manifest as they would on hardware, but thread
    /// count caps it at tens of devices.
    #[default]
    Thread,
    /// Single-threaded discrete-event executor — the scale path. No
    /// threads, no watchdog, quiescence detection instead of timeouts;
    /// emulates thousands of devices in the time the thread backend
    /// needs for dozens.
    Event,
}

/// Emulator knobs.
#[derive(Debug, Clone, Copy)]
pub struct EmulatorConfig {
    /// Training iterations to execute back-to-back.
    pub iterations: u32,
    /// p2p buffer depth per link (1 = single pre-allocated comm buffer).
    pub channel_capacity: usize,
    /// Relative kernel-time jitter (0.0 = exact, deterministic timing).
    pub jitter: f64,
    /// Per-device straggler spread: each device gets a fixed slowdown
    /// factor in `[1, 1+spread]` (seeded), modeling the real-cluster
    /// heterogeneity the paper's simulator does not capture ("un-modeled
    /// behaviors" that make it slightly overestimate throughput, §6.6).
    pub straggler_spread: f64,
    /// RNG seed for jitter.
    pub seed: u64,
    /// Per-device memory capacity in bytes (None disables OOM checking).
    pub mem_capacity: Option<u64>,
    /// Record a full per-instruction timeline.
    pub record_timeline: bool,
    /// Record the executed span graph ([`mario_ir::SpanGraph`]) — the
    /// input to critical-path analysis. Bit-identical across both
    /// backends and the DP simulator on a zero-jitter run.
    pub record_spans: bool,
    /// Model-state checkpointing policy (None = no checkpoints; the run
    /// is bit-identical to a build without the checkpoint layer).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Minimum real-time watchdog for blocking ops. The effective watchdog
    /// additionally scales with schedule size (see [`effective_watchdog`])
    /// so big schedules on loaded machines are not misdiagnosed as
    /// deadlocked; exceeding it means deadlock. Ignored by the event
    /// backend, which detects deadlock by quiescence, not by time.
    pub watchdog: Duration,
    /// Which executor to drive: the thread-per-device concurrency oracle
    /// or the single-threaded discrete-event scale path. Both produce
    /// bit-identical reports.
    pub backend: EmulatorBackend,
}

impl Default for EmulatorConfig {
    fn default() -> Self {
        Self {
            iterations: 1,
            channel_capacity: 1,
            jitter: 0.0,
            straggler_spread: 0.0,
            seed: 42,
            mem_capacity: None,
            record_timeline: false,
            record_spans: false,
            checkpoint: None,
            watchdog: Duration::from_secs(2),
            backend: EmulatorBackend::Thread,
        }
    }
}

/// Real-time budget per emulated instruction used to scale the watchdog.
const WATCHDOG_PER_INSTR: Duration = Duration::from_micros(50);
/// Hard ceiling on the scaled watchdog.
const WATCHDOG_CAP: Duration = Duration::from_secs(60);

/// The watchdog actually armed for `schedule` under `cfg`: the configured
/// floor, grown with the work a single device might have to wait behind
/// (its *own* program length × iterations), capped at [`WATCHDOG_CAP`].
/// A fixed wall-clock watchdog misfires on schedules much larger than the
/// default was tuned for; scaling keeps "no progress" meaning "deadlock".
///
/// Scaling by the *per-device* instruction count, not the schedule total,
/// matters at high device counts: devices execute concurrently, so the
/// longest wait any one device can legitimately experience grows with its
/// peers' program lengths, not with their number. The old total-size
/// scaling hit [`WATCHDOG_CAP`] on wide clusters and stalled a genuine
/// deadlock for the full ceiling before reporting it.
pub fn effective_watchdog(schedule: &Schedule, cfg: &EmulatorConfig) -> Duration {
    let longest = schedule
        .programs()
        .iter()
        .map(|p| p.len())
        .max()
        .unwrap_or(0) as u32;
    let work = longest * cfg.iterations.max(1);
    let scaled = WATCHDOG_PER_INSTR.saturating_mul(work).min(WATCHDOG_CAP);
    cfg.watchdog.max(scaled)
}

/// Results of an emulated run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Virtual duration of the whole run (max device clock), ns.
    pub total_ns: Nanos,
    /// Checkpoint-free virtual duration per iteration, ns: the critical
    /// path minus the checkpoint-write time that device actually paid,
    /// divided by iterations (rounded to nearest). This is the figure the
    /// Daly interval tuner consumes as `T`; folding write cost into it
    /// would make the tuned interval depend on the interval being tuned.
    pub iter_ns: Nanos,
    /// Final virtual clock per device.
    pub device_clocks: Vec<Nanos>,
    /// Peak memory footprint per device, bytes.
    pub peak_mem: Vec<u64>,
    /// Merged instruction timeline (empty unless recording was enabled).
    pub timeline: Vec<TimelineEvent>,
    /// Injected faults the run absorbed without failing (slowdowns,
    /// link delays), in device order.
    pub faults: Vec<FaultReport>,
    /// Iterations covered by the last cluster-durable checkpoint
    /// (None when no [`EmulatorConfig::checkpoint`] policy was active).
    pub last_checkpoint: Option<u32>,
    /// Virtual time actually spent writing checkpoints, summed across
    /// devices, ns. These are real per-device payments, not the analytic
    /// `interval × write_ns` figure: a device that died before a write
    /// contributes nothing, and with [`mario_ir::ShardedWrite`] async
    /// overlap only the residue the bubbles could not hide is counted.
    /// Always equal to the telemetry's summed `ckpt_sync_ns` class.
    pub ckpt_overhead_ns: Nanos,
    /// The run's flight-recorder output: per-device time-class
    /// breakdowns (conserving each device clock exactly) and per-link
    /// transfer statistics. Bit-identical to the DP simulator's
    /// telemetry on a zero-jitter run.
    #[serde(default)]
    pub telemetry: Telemetry,
    /// Serving counters and latency digest, stamped by the serving loop
    /// (`mario_cluster::serving::serve`); None on training runs.
    #[serde(default)]
    pub serving: Option<crate::serving::ServingTelemetry>,
    /// The executed span graph (Some only when
    /// [`EmulatorConfig::record_spans`] was set): the causal record
    /// `mario-core`'s critical-path analyzer consumes.
    #[serde(default)]
    pub spans: Option<SpanGraph>,
}

impl RunReport {
    /// Training throughput in samples/s for a global batch of `samples`
    /// per iteration.
    pub fn throughput(&self, samples: u64) -> f64 {
        samples as f64 / (self.iter_ns as f64 / 1e9)
    }

    /// Peak memory across devices, bytes.
    pub fn max_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().max().unwrap_or(0)
    }

    /// Minimum per-device peak, bytes (Table 5 reports `[min, max]`).
    pub fn min_peak_mem(&self) -> u64 {
        self.peak_mem.iter().copied().min().unwrap_or(0)
    }
}

/// Runs `schedule` on the emulated cluster (no injected faults).
pub fn run(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
) -> Result<RunReport, EmuError> {
    run_with_faults(schedule, cost, cfg, &FaultPlan::none())
}

/// Runs `schedule` with the faults of `plan` injected. With an empty plan
/// this is exactly [`run`]; with a populated plan every induced failure
/// terminates the run with a structured [`EmuError::Fault`] naming the
/// injected fault, the observing device, its pc and virtual time — never a
/// hang, never a panic.
pub fn run_with_faults(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
) -> Result<RunReport, EmuError> {
    run_with_faults_startup(schedule, cost, cfg, plan, &[])
}

/// [`run_with_faults`] with a per-device startup offset: device `d`'s
/// clock begins at `startup[d]` ns (0 when the slice is short), charged
/// to the `reconfig_ns` telemetry class — the state-redistribution cost
/// an elastic reconfiguration pays before the shrunk pipeline's first
/// instruction. The offsets propagate through blocking p2p exactly as in
/// the DP simulator's `simulate_timeline_startup`, so zero-jitter parity
/// holds on reconfigured runs too.
pub fn run_with_faults_startup(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    startup: &[Nanos],
) -> Result<RunReport, EmuError> {
    if cfg.backend == EmulatorBackend::Event {
        return crate::event::run_event_with_faults_startup(schedule, cost, cfg, plan, startup);
    }
    run_threaded(schedule, cost, cfg, plan, startup, None)
}

/// One serving attempt: [`run_with_faults`] with serving hooks active —
/// each micro-batch's first-stage forward is gated at `release[micro]`
/// (the ingress wait lands in the `recv_blocked_ns` class, like any other
/// wait for upstream data) and the last stage records completion times on
/// `board`. The board is observational, so a run with all-zero releases is
/// bit-identical to the un-instrumented [`run_with_faults`]. Dispatches to
/// whichever backend `cfg` selects.
pub fn run_serving(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    release: &[Nanos],
    board: &crate::serving::ServeBoard,
) -> Result<RunReport, EmuError> {
    let hooks = crate::serving::ServingHooks {
        topo: schedule.topology,
        release,
        board,
    };
    if cfg.backend == EmulatorBackend::Event {
        return crate::event::run_event_serving(schedule, cost, cfg, plan, hooks);
    }
    run_threaded(schedule, cost, cfg, plan, &[], Some(hooks))
}

/// The thread backend's worker: spawns one OS thread per device and
/// merges the reports. `serving` threads the serving hooks into every
/// device runtime (None on training runs).
fn run_threaded(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    startup: &[Nanos],
    serving: Option<crate::serving::ServingHooks<'_>>,
) -> Result<RunReport, EmuError> {
    let devices = schedule.devices() as usize;
    let rules = mario_ir::MemoryRules::new(schedule);
    let watchdog = effective_watchdog(schedule, &cfg);
    let stalls = StallTable::new(devices);
    let ckpts = CkptBoard::new(devices);

    // Discover which directed (sender, receiver, class) links exist.
    let mut send_ends: Vec<HashMap<(DeviceId, MsgClass, mario_ir::PartId), SendHalf>> =
        (0..devices).map(|_| HashMap::new()).collect();
    let mut recv_ends: Vec<HashMap<(DeviceId, MsgClass, mario_ir::PartId), RecvHalf>> =
        (0..devices).map(|_| HashMap::new()).collect();
    for prog in schedule.programs() {
        for (_, i) in prog.iter() {
            let (peer, class) = match i.kind {
                InstrKind::SendAct { peer } => (peer, MsgClass::Act),
                InstrKind::SendGrad { peer } => (peer, MsgClass::Grad),
                _ => continue,
            };
            let key_s = (peer, class, i.part);
            if let std::collections::hash_map::Entry::Vacant(slot) =
                send_ends[prog.device.index()].entry(key_s)
            {
                let (tx, rx) = link(cfg.channel_capacity, watchdog);
                slot.insert(tx);
                recv_ends[peer.index()].insert((prog.device, class, i.part), rx);
            }
        }
    }

    // Settlement barrier for deterministic teardown: a device that has
    // finished or failed first poisons its links (a FIFO-ordered
    // end-of-stream marker behind all genuine traffic), then parks here
    // until every device has settled. Channel halves thus stay alive for
    // as long as any peer might still observe them, so what a blocked
    // device sees never depends on the real-time order in which its
    // peers unwound — the property that keeps multi-fault attribution
    // (and the recovery accounting built on it) reproducible.
    let settle = std::sync::Barrier::new(devices);

    let mut results: Vec<Result<DeviceReport, EmuError>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(devices);
        for (d, (out, inp)) in send_ends
            .into_iter()
            .zip(recv_ends)
            .enumerate()
        {
            let rules = &rules;
            let stalls = &stalls;
            let ckpts = &ckpts;
            let settle = &settle;
            let device = DeviceId(d as u32);
            let program = schedule.program(device);
            let faults = plan.for_device(device);
            handles.push(scope.spawn(move || {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut rt = DeviceRuntime::new(
                        DeviceCtx {
                            device,
                            cost,
                            rules,
                            mem_capacity: cfg.mem_capacity,
                            jitter: cfg.jitter,
                            straggler_spread: cfg.straggler_spread,
                            seed: cfg.seed,
                            record_timeline: cfg.record_timeline,
                            record_spans: cfg.record_spans,
                            faults,
                            stalls,
                            checkpoint: cfg.checkpoint,
                            ckpts,
                            startup_ns: startup.get(d).copied().unwrap_or(0),
                            serving,
                        },
                        out,
                        inp,
                    );
                    let mut failed = None;
                    for iter in 0..cfg.iterations {
                        if let Err(e) = rt.run_iteration(program, iter) {
                            failed = Some(e);
                            break;
                        }
                    }
                    if failed.is_none() {
                        // No bubbles remain past the last instruction: any
                        // async-checkpoint residue is paid synchronously so
                        // the final checkpoint is durable when the run ends.
                        rt.drain_checkpoint();
                    }
                    rt.poison_links();
                    (rt, failed)
                }));
                // Every worker reaches the barrier, panicked or not (a
                // panicking device lost its halves in the unwind and
                // cannot poison, but it must not leave the others parked).
                settle.wait();
                match outcome {
                    Ok((rt, None)) => Ok(rt.finish()),
                    Ok((rt, Some(e))) => {
                        drop(rt);
                        Err(e)
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }));
        }
        for (d, h) in handles.into_iter().enumerate() {
            // A panicking device must not take the emulator down with it:
            // contain the panic and convert it into a structured error.
            results.push(h.join().unwrap_or_else(|payload| {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(EmuError::WorkerPanicked {
                    device: DeviceId(d as u32),
                    detail,
                })
            }));
        }
    });

    settle_report(results, &cfg, plan, &ckpts)
}

/// Merges per-device outcomes into a [`RunReport`] (or the run's
/// root-cause error). Shared by the thread and event backends so
/// root-cause selection, critical-path arithmetic and telemetry assembly
/// cannot drift between them.
///
/// Reports may carry *any* device ids — they need not be contiguous or
/// dense (an elastic shrink's survivor set, for instance): everything
/// below keys by each report's own device id, never by its position in
/// the vector.
pub(crate) fn settle_report(
    results: Vec<Result<DeviceReport, EmuError>>,
    cfg: &EmulatorConfig,
    plan: &FaultPlan,
    ckpts: &CkptBoard,
) -> Result<RunReport, EmuError> {
    let mut reports = Vec::with_capacity(results.len());
    let mut errors = Vec::new();
    for r in results {
        match r {
            Ok(rep) => reports.push(rep),
            Err(e) => errors.push(e),
        }
    }
    // When several devices fail at once (a crash cascades into peer
    // failures and watchdog timeouts), report the root cause: lowest
    // priority rank wins, device order breaks ties — deterministic under
    // any thread interleaving.
    if let Some(root) = errors
        .iter()
        .min_by_key(|e| (e.priority(), e.device().index()))
    {
        let mut root = root.clone();
        // Stamp the recovery context on the attribution: where a resume
        // would restart, and which correlated group (if any) the fault
        // belongs to.
        if let EmuError::Fault(report) = &mut root {
            report.last_checkpoint = ckpts.cluster_saved();
            report.ckpt_paid_ns = ckpts.total_paid();
            report.group = plan.group_of(&report.fault);
        }
        return Err(root);
    }

    let device_clocks: Vec<Nanos> = reports.iter().map(|r| r.clock).collect();
    let total_ns = device_clocks.iter().copied().max().unwrap_or(0);
    // The per-iteration figure feeds throughput numbers and the Daly
    // interval tuner, both of which want the schedule's compute/comm time
    // with the checkpoint writes factored *out*: subtract what the
    // critical-path device actually paid writing checkpoints, then round
    // to nearest instead of truncating. The critical device is named by
    // its report's id, not its vector position — the two differ on a
    // gappy survivor set.
    let critical = reports
        .iter()
        .max_by_key(|r| r.clock)
        .map_or(DeviceId(0), |r| r.telemetry.device);
    let ckpt_free_ns = total_ns.saturating_sub(ckpts.paid_of(critical));
    let iters = cfg.iterations.max(1) as u64;
    let iter_ns = (ckpt_free_ns + iters / 2) / iters;
    let mut timeline: Vec<TimelineEvent> = reports
        .iter()
        .flat_map(|r| r.timeline.iter().cloned())
        .collect();
    timeline.sort_by_key(|e| (e.start, e.device.0));
    let faults: Vec<FaultReport> = reports
        .iter()
        .flat_map(|r| r.absorbed.iter().cloned())
        .map(|mut r| {
            r.group = plan.group_of(&r.fault);
            r
        })
        .collect();
    // Assemble the flight recorder through the same constructor the DP
    // simulator uses, so link merge/order arithmetic cannot drift.
    let telemetry = Telemetry::assemble(
        reports.iter().map(|r| r.telemetry.clone()).collect(),
        reports.iter().flat_map(|r| {
            let src = r.telemetry.device;
            r.link_sends.iter().map(move |(&dst, &s)| ((src, dst), s))
        }),
        reports.iter().flat_map(|r| {
            let dst = r.telemetry.device;
            r.link_recv_wait.iter().map(move |(&src, &ns)| ((src, dst), ns))
        }),
    );
    // Conservation is checked against clocks keyed by device *id* (the
    // index `check_conservation` uses), which only coincides with report
    // order when ids happen to be dense.
    let clocks_by_id = {
        let slots = reports
            .iter()
            .map(|r| r.telemetry.device.index() + 1)
            .max()
            .unwrap_or(0);
        let mut v = vec![0; slots];
        for r in &reports {
            v[r.telemetry.device.index()] = r.clock;
        }
        v
    };
    debug_assert!(
        telemetry.check_conservation(&clocks_by_id).is_ok(),
        "telemetry conservation violated: {:?}",
        telemetry.check_conservation(&clocks_by_id)
    );
    debug_assert_eq!(telemetry.total_ckpt_sync_ns(), ckpts.total_paid());
    // Merge per-device span streams into one graph, keyed by each
    // report's own device id (gappy survivor sets included).
    let spans = if cfg.record_spans {
        let mut graph = SpanGraph::new(0, cfg.channel_capacity);
        for r in &reports {
            for &s in &r.spans {
                graph.push(s);
            }
        }
        graph.makespan = total_ns;
        debug_assert!(
            graph.check_tiling(&clocks_by_id).is_ok(),
            "span tiling violated on {:?}",
            graph.check_tiling(&clocks_by_id)
        );
        Some(graph)
    } else {
        None
    };
    Ok(RunReport {
        total_ns,
        iter_ns,
        device_clocks,
        peak_mem: reports.iter().map(|r| r.peak_mem).collect(),
        timeline,
        faults,
        last_checkpoint: cfg.checkpoint.map(|_| ckpts.cluster_saved()),
        ckpt_overhead_ns: ckpts.total_paid(),
        telemetry,
        serving: None,
        spans,
    })
}

/// A run that survived injected faults via restarts.
#[derive(Debug, Clone)]
pub struct RecoveredRun {
    /// The final, successful run (of the iterations that remained after
    /// resuming — all of them when nothing was checkpointed).
    pub report: RunReport,
    /// Total attempts, including the successful one (1 = clean first try).
    pub attempts: u32,
    /// Structured reports of every fault that killed an attempt.
    pub fault_log: Vec<FaultReport>,
    /// Virtual time of the whole recovery, ns: the final run plus the
    /// time each failed attempt burned before its fault surfaced.
    /// `report.total_ns` alone under-reports recovery cost by exactly
    /// that wasted work.
    pub total_ns_with_replay: Nanos,
    /// Iterations already covered by the checkpoint the final attempt
    /// resumed from (0 = it restarted from scratch).
    pub resumed_from: u32,
    /// Iterations that completed in failed attempts but were *not*
    /// covered by a checkpoint — executed again after the restart. This
    /// is the work checkpointing exists to bound.
    pub replayed_iters: u32,
    /// Total virtual time spent writing checkpoints across all attempts,
    /// summed over devices, ns — the overhead side of the checkpoint
    /// trade. Failed attempts contribute every write their devices paid
    /// for (from [`FaultReport::ckpt_paid_ns`]), not just the writes that
    /// became cluster-durable.
    pub ckpt_overhead_ns: Nanos,
}

/// Runs `schedule` under `plan`, restarting after each injected-fault
/// failure — the emulator's model of checkpoint-restart recovery. With a
/// [`EmulatorConfig::checkpoint`] policy, each restart resumes from the
/// last cluster-durable checkpoint (the failed attempt's
/// [`FaultReport::last_checkpoint`]) and only runs the remaining
/// iterations; without one it restarts from iteration 0. Faults fire
/// once; a restart re-runs without the already-fired plan (the
/// replacement device / healed link). Non-injected errors (real OOM, real
/// deadlock) propagate immediately: restarting cannot fix a broken
/// schedule. At most `max_restarts` restarts are attempted.
pub fn run_with_recovery(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    max_restarts: u32,
) -> Result<RecoveredRun, EmuError> {
    let mut fault_log: Vec<FaultReport> = Vec::new();
    let mut attempts = 0;
    let mut active = plan.clone();
    // Iterations durably checkpointed by failed attempts: the next
    // attempt picks up after them.
    let mut completed: u32 = 0;
    let mut replayed: u32 = 0;
    let mut failed_overhead: Nanos = 0;
    loop {
        attempts += 1;
        let attempt_cfg = EmulatorConfig {
            iterations: cfg.iterations - completed,
            ..cfg
        };
        match run_with_faults(schedule, cost, attempt_cfg, &active) {
            Ok(mut report) => {
                // Each failed attempt ran up to its fault's virtual time
                // before being thrown away; charge that replay cost.
                let wasted: Nanos = fault_log.iter().map(|r| r.vtime).sum();
                // Bin the restart-forcing faults by their *site* (the
                // faulty component, not the observing device) onto the
                // final report's telemetry — the per-device hard-fault
                // counts a lemon-detecting tuner consumes.
                for r in &fault_log {
                    let site = r.fault.site();
                    if let Some(d) = report
                        .telemetry
                        .devices
                        .iter_mut()
                        .find(|d| d.device == site)
                    {
                        d.hard_faults += 1;
                    }
                }
                return Ok(RecoveredRun {
                    total_ns_with_replay: report.total_ns + wasted,
                    ckpt_overhead_ns: failed_overhead + report.ckpt_overhead_ns,
                    report,
                    attempts,
                    fault_log,
                    resumed_from: completed,
                    replayed_iters: replayed,
                });
            }
            Err(EmuError::Fault(report)) if attempts <= max_restarts => {
                // The attempt's durable progress survives; everything past
                // the checkpoint is replayed by the next attempt.
                let saved = report.last_checkpoint;
                replayed += report.iteration.saturating_sub(saved);
                completed += saved;
                // Charge what the attempt's devices actually spent writing
                // (stamped by root-cause attribution) — including writes
                // that never became cluster-durable: that time was burned
                // whether or not the checkpoint is resumable.
                failed_overhead += report.ckpt_paid_ns;
                fault_log.push(*report);
                // The faulted component is replaced/healed — but a
                // cascading plan may have armed a follow-up that fires
                // on the next attempt; otherwise the rest runs
                // fault-free.
                active = active.take_armed();
            }
            Err(e) => return Err(e),
        }
    }
}

/// How a recovery session answers a permanent device loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Wait for a replacement device, then resume from the last durable
    /// checkpoint on the original topology at full speed.
    WaitAndResume,
    /// Re-partition the model onto the surviving devices, pay the state
    /// redistribution once, and continue degraded on a shorter (slower)
    /// pipeline.
    ShrinkAndContinue,
}

impl std::fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryPolicy::WaitAndResume => write!(f, "wait-and-resume"),
            RecoveryPolicy::ShrinkAndContinue => write!(f, "shrink-and-continue"),
        }
    }
}

/// Everything the elastic loop needs to tear the faulted pipeline down
/// and rebuild it on the survivors: the shrunk schedule, the cost model
/// matching its device numbering, the channel depth it needs, and the
/// per-device state-redistribution charge. Produced by a planner (see
/// `mario-core`'s `plan_shrink`) in response to a [`FaultReport`].
pub struct Reconfiguration {
    /// The schedule for the shrunk pipeline (devices renumbered 0..p−k).
    pub schedule: Schedule,
    /// Cost model for the shrunk pipeline's device numbering.
    pub cost: Box<dyn CostModel>,
    /// Channel depth the shrunk schedule needs.
    pub channel_capacity: usize,
    /// Per-device startup charge, ns: the time each survivor spends
    /// fetching the layer state it did not already hold.
    pub startup_ns: Vec<Nanos>,
    /// Total bytes of model state moved between devices.
    pub moved_bytes: u64,
    /// The surviving devices, in their *original* numbering; survivor
    /// `i` becomes the shrunk schedule's device `i`.
    pub survivors: Vec<DeviceId>,
}

/// One teardown/rebuild the elastic loop performed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReconfigureEvent {
    /// Iteration (within the failed attempt) at which the fault fired.
    pub at_iteration: u32,
    /// The surviving devices, in original numbering.
    pub survivors: Vec<DeviceId>,
    /// Total bytes of model state redistributed.
    pub moved_bytes: u64,
    /// Wall-clock redistribution charge, ns (the slowest survivor's
    /// startup — the pipeline cannot start before every shard arrived).
    pub reconfig_ns: Nanos,
    /// Pipeline depth after the rebuild.
    pub devices_after: u32,
}

/// A run that survived a permanent device loss by shrinking (or, when
/// the planner declined, by plain checkpoint-restart).
#[derive(Debug)]
pub struct ElasticRun {
    /// The final, successful run — on the shrunk topology if a
    /// reconfiguration happened.
    pub report: RunReport,
    /// Total attempts, including the successful one.
    pub attempts: u32,
    /// Structured reports of every fault that killed an attempt.
    pub fault_log: Vec<FaultReport>,
    /// Every teardown/rebuild performed, in order.
    pub reconfigurations: Vec<ReconfigureEvent>,
    /// Virtual time of the whole session, ns: the final run (whose clock
    /// already includes any redistribution charge) plus the time each
    /// failed attempt burned before its fault surfaced.
    pub total_ns_with_replay: Nanos,
    /// Iterations already covered by the checkpoint the final attempt
    /// resumed from.
    pub resumed_from: u32,
    /// Iterations completed in failed attempts but not checkpointed —
    /// executed again after the restart.
    pub replayed_iters: u32,
    /// Checkpoint write time across all attempts, summed over devices,
    /// ns.
    pub ckpt_overhead_ns: Nanos,
    /// Total wall-clock redistribution charge across reconfigurations,
    /// ns — also visible per device in the final report's telemetry
    /// `reconfig_ns` class when the last attempt followed a rebuild.
    pub reconfig_ns: Nanos,
}

/// [`run_with_recovery`] with an elastic twist: after each fault that
/// kills an attempt, `reconfigure` may hand back a [`Reconfiguration`] —
/// the links and devices of the old pipeline are torn down and the next
/// attempt runs the shrunk schedule, its devices starting at their
/// redistribution offsets and resuming from the last cluster-durable
/// checkpoint. When `reconfigure` returns `None` the loop behaves like
/// plain checkpoint-restart on the current topology (the
/// wait-and-resume policy, with any replacement wait charged by the
/// caller). Cascading plans ([`FaultPlan::arming`]) are consumed exactly
/// as in [`run_with_recovery`].
pub fn run_with_elastic_recovery(
    schedule: &Schedule,
    cost: &dyn CostModel,
    cfg: EmulatorConfig,
    plan: &FaultPlan,
    max_restarts: u32,
    mut reconfigure: impl FnMut(&FaultReport) -> Option<Reconfiguration>,
) -> Result<ElasticRun, EmuError> {
    let mut fault_log: Vec<FaultReport> = Vec::new();
    let mut reconfigurations: Vec<ReconfigureEvent> = Vec::new();
    let mut attempts = 0;
    let mut active = plan.clone();
    let mut completed: u32 = 0;
    let mut replayed: u32 = 0;
    let mut failed_overhead: Nanos = 0;
    let mut reconfig_total: Nanos = 0;
    // The topology the next attempt runs on: the original borrow until a
    // reconfiguration swaps in an owned shrunk schedule + cost model.
    let mut cur_schedule: Schedule = schedule.clone();
    let mut cur_cost: Option<Box<dyn CostModel>> = None;
    let mut cur_cfg = cfg;
    // Redistribution offsets, charged to the single attempt that follows
    // a rebuild and cleared afterwards.
    let mut startup: Vec<Nanos> = Vec::new();
    loop {
        attempts += 1;
        let attempt_cfg = EmulatorConfig {
            iterations: cfg.iterations - completed,
            ..cur_cfg
        };
        let attempt_cost: &dyn CostModel = cur_cost.as_deref().unwrap_or(cost);
        match run_with_faults_startup(&cur_schedule, attempt_cost, attempt_cfg, &active, &startup) {
            Ok(mut report) => {
                let wasted: Nanos = fault_log.iter().map(|r| r.vtime).sum();
                // Hard faults binned by site, as in `run_with_recovery`;
                // a site that no longer exists on the shrunk topology is
                // skipped (the lemon left the fleet with its counter).
                for r in &fault_log {
                    let site = r.fault.site();
                    if let Some(d) = report
                        .telemetry
                        .devices
                        .iter_mut()
                        .find(|d| d.device == site)
                    {
                        d.hard_faults += 1;
                    }
                }
                return Ok(ElasticRun {
                    total_ns_with_replay: report.total_ns + wasted,
                    ckpt_overhead_ns: failed_overhead + report.ckpt_overhead_ns,
                    report,
                    attempts,
                    fault_log,
                    reconfigurations,
                    resumed_from: completed,
                    replayed_iters: replayed,
                    reconfig_ns: reconfig_total,
                });
            }
            Err(EmuError::Fault(report)) if attempts <= max_restarts => {
                let saved = report.last_checkpoint;
                replayed += report.iteration.saturating_sub(saved);
                completed += saved;
                failed_overhead += report.ckpt_paid_ns;
                active = active.take_armed();
                match reconfigure(&report) {
                    Some(r) => {
                        let reconfig_ns = r.startup_ns.iter().copied().max().unwrap_or(0);
                        reconfig_total += reconfig_ns;
                        reconfigurations.push(ReconfigureEvent {
                            at_iteration: report.iteration,
                            survivors: r.survivors.clone(),
                            moved_bytes: r.moved_bytes,
                            reconfig_ns,
                            devices_after: r.schedule.devices(),
                        });
                        cur_schedule = r.schedule;
                        cur_cost = Some(r.cost);
                        cur_cfg = EmulatorConfig {
                            channel_capacity: r.channel_capacity,
                            ..cur_cfg
                        };
                        startup = r.startup_ns;
                    }
                    // Plain restart on the current topology: state is
                    // already in place, nothing to redistribute.
                    None => startup = Vec::new(),
                }
                fault_log.push(*report);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use mario_ir::UnitCost;
    use mario_schedules::{generate, ScheduleConfig};

    fn unit() -> UnitCost {
        UnitCost::paper_grid()
    }

    fn fast(cfg: EmulatorConfig) -> EmulatorConfig {
        EmulatorConfig {
            watchdog: Duration::from_millis(300),
            ..cfg
        }
    }

    #[test]
    fn one_f_one_b_matches_closed_form_makespan() {
        // Free comm + unit grid: iteration time = 3(D-1) + 3N time units.
        for (d, n) in [(2u32, 4u32), (4, 8), (8, 8)] {
            let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, d, n));
            let r = run(&s, &unit(), EmulatorConfig::default()).unwrap();
            let expect = (3 * (d - 1) + 3 * n) as u64 * 1_000;
            assert_eq!(r.total_ns, expect, "D={d} N={n}");
        }
    }

    #[test]
    fn determinism_across_runs_and_interleavings() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::Chimera, 4, 8));
        let a = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        for _ in 0..5 {
            let b = run(&s, &unit(), EmulatorConfig::default()).unwrap();
            assert_eq!(a.device_clocks, b.device_clocks);
            assert_eq!(a.peak_mem, b.peak_mem);
        }
    }

    #[test]
    fn jitter_is_deterministic_given_seed() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let cfg = EmulatorConfig {
            jitter: 0.05,
            ..Default::default()
        };
        let a = run(&s, &unit(), cfg).unwrap();
        let b = run(&s, &unit(), cfg).unwrap();
        assert_eq!(a.device_clocks, b.device_clocks);
        // And differs from the exact run.
        let exact = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        assert_ne!(a.total_ns, exact.total_ns);
    }

    #[test]
    fn oom_is_detected_and_attributed() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::GPipe, 2, 8));
        // GPipe device 0 holds 8 activations of 1 byte each; cap at 4.
        let cfg = EmulatorConfig {
            mem_capacity: Some(4),
            watchdog: Duration::from_millis(300),
            ..Default::default()
        };
        let err = run(&s, &unit(), cfg).unwrap_err();
        assert!(err.is_oom(), "{err}");
    }

    #[test]
    fn peak_memory_matches_on_the_fly_profile() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let r = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        // UnitCost: 1 byte per live micro-batch, no static memory, zero
        // boundary bytes.
        assert_eq!(r.peak_mem, vec![4, 3, 2, 1]);
    }

    #[test]
    fn multiple_iterations_scale_linearly() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 4));
        let one = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        let three = run(
            &s,
            &unit(),
            EmulatorConfig {
                iterations: 3,
                ..Default::default()
            },
        )
        .unwrap();
        // Back-to-back iterations may overlap slightly across the flush,
        // but per-iteration time must not exceed the single-iteration time.
        assert!(three.iter_ns <= one.total_ns);
        assert!(three.total_ns >= 2 * one.total_ns);
    }

    #[test]
    fn timeline_records_every_instruction() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 2, 2));
        let r = run(
            &s,
            &unit(),
            EmulatorConfig {
                record_timeline: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.timeline.len(), s.total_instrs());
        // Events are time-ordered.
        for w in r.timeline.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn all_schemes_run_to_completion() {
        use mario_ir::SchemeKind::*;
        for scheme in [GPipe, OneFOneB, Chimera, Interleave { chunks: 2 }] {
            let s = generate(ScheduleConfig::new(scheme, 4, 8));
            let r = run(&s, &unit(), EmulatorConfig::default()).unwrap();
            assert!(r.total_ns > 0, "{scheme:?}");
        }
        // The wave pipeline needs buffer depth 2 at D=8.
        let s = generate(ScheduleConfig::new(Wave { chunks: 2 }, 8, 16));
        let r = run(
            &s,
            &unit(),
            EmulatorConfig {
                channel_capacity: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.total_ns > 0);
    }

    #[test]
    fn throughput_helper() {
        let r = RunReport {
            total_ns: 2_000_000_000,
            iter_ns: 2_000_000_000,
            device_clocks: vec![],
            peak_mem: vec![10, 30, 20],
            timeline: vec![],
            faults: vec![],
            last_checkpoint: None,
            ckpt_overhead_ns: 0,
            telemetry: Telemetry::default(),
            serving: None,
            spans: None,
        };
        assert!((r.throughput(128) - 64.0).abs() < 1e-9);
        assert_eq!(r.max_peak_mem(), 30);
        assert_eq!(r.min_peak_mem(), 10);
    }

    #[test]
    fn watchdog_scales_with_schedule_size_but_never_shrinks() {
        let small = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 2, 2));
        let cfg = EmulatorConfig::default();
        // Small schedule: the configured floor dominates.
        assert_eq!(effective_watchdog(&small, &cfg), cfg.watchdog);
        // Huge schedule: the scaled value dominates, capped.
        let big = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 8, 64));
        let many = EmulatorConfig {
            iterations: 200,
            ..cfg
        };
        let w = effective_watchdog(&big, &many);
        assert!(w > cfg.watchdog, "{w:?}");
        assert!(w <= WATCHDOG_CAP);
        // An explicit large floor is always respected.
        let strict = EmulatorConfig {
            watchdog: Duration::from_secs(120),
            ..cfg
        };
        assert_eq!(effective_watchdog(&small, &strict), strict.watchdog);
    }

    #[test]
    fn injected_crash_yields_structured_fault_not_hang() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none().with(FaultKind::Crash {
            device: DeviceId(2),
            pc: 5,
        });
        let err = run_with_faults(&s, &unit(), fast(EmulatorConfig::default()), &plan).unwrap_err();
        let report = err.fault_report().expect("fault attribution");
        assert_eq!(report.device, DeviceId(2));
        assert_eq!(report.pc, 5);
        assert_eq!(report.fault, plan.faults[0]);
    }

    #[test]
    fn injected_stall_is_attributed_to_the_receiver() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none().with(FaultKind::LinkStall {
            src: DeviceId(1),
            dst: DeviceId(2),
            nth: 0,
        });
        let err = run_with_faults(&s, &unit(), fast(EmulatorConfig::default()), &plan).unwrap_err();
        let report = err.fault_report().expect("fault attribution");
        assert_eq!(report.device, DeviceId(2));
        assert_eq!(report.blocked_peer, Some(DeviceId(1)));
        assert_eq!(report.fault, plan.faults[0]);
    }

    #[test]
    fn absorbable_faults_complete_and_are_logged() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let clean = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        let plan = FaultPlan::none()
            .with(FaultKind::Slowdown {
                device: DeviceId(1),
                factor: 10.0,
                from_pc: 0,
                until_pc: 8,
            })
            .with(FaultKind::LinkDelay {
                src: DeviceId(0),
                dst: DeviceId(1),
                nth: 0,
                extra_ns: 7_000,
            });
        let r = run_with_faults(&s, &unit(), EmulatorConfig::default(), &plan).unwrap();
        assert_eq!(r.faults.len(), 2, "{:?}", r.faults);
        assert!(r.total_ns > clean.total_ns);
    }

    #[test]
    fn empty_plan_is_bit_identical_to_plain_run() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::Chimera, 4, 8));
        let a = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        let b = run_with_faults(&s, &unit(), EmulatorConfig::default(), &FaultPlan::none()).unwrap();
        assert_eq!(a.device_clocks, b.device_clocks);
        assert_eq!(a.peak_mem, b.peak_mem);
        assert!(b.faults.is_empty());
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_report() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        for seed in 0..16 {
            let plan = FaultPlan::single_crash_or_stall(seed, &s);
            let a = run_with_faults(&s, &unit(), fast(EmulatorConfig::default()), &plan);
            let b = run_with_faults(&s, &unit(), fast(EmulatorConfig::default()), &plan);
            let ra = a.unwrap_err();
            let rb = b.unwrap_err();
            assert_eq!(
                ra.fault_report(),
                rb.fault_report(),
                "seed {seed}: reports must be identical"
            );
        }
    }

    #[test]
    fn recovery_restarts_after_a_crash() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none().with(FaultKind::Crash {
            device: DeviceId(0),
            pc: 2,
        });
        let rec = run_with_recovery(&s, &unit(), fast(EmulatorConfig::default()), &plan, 3)
            .expect("recovers on restart");
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.fault_log.len(), 1);
        assert_eq!(rec.fault_log[0].fault, plan.faults[0]);
        let clean = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        assert_eq!(rec.report.device_clocks, clean.device_clocks);
        // The failed first attempt's work is charged, not discarded.
        assert_eq!(
            rec.total_ns_with_replay,
            rec.report.total_ns + rec.fault_log[0].vtime
        );
        assert!(rec.total_ns_with_replay > rec.report.total_ns);
    }

    #[test]
    fn clean_recovery_charges_no_replay() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let rec = run_with_recovery(
            &s,
            &unit(),
            fast(EmulatorConfig::default()),
            &FaultPlan::none(),
            3,
        )
        .expect("clean run");
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.total_ns_with_replay, rec.report.total_ns);
    }

    #[test]
    fn recovery_does_not_mask_real_oom() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::GPipe, 2, 8));
        let cfg = EmulatorConfig {
            mem_capacity: Some(4),
            watchdog: Duration::from_millis(300),
            ..Default::default()
        };
        let err = run_with_recovery(&s, &unit(), cfg, &FaultPlan::none(), 3).unwrap_err();
        assert!(err.is_oom(), "{err}");
    }

    #[test]
    fn checkpoint_writes_are_charged_and_recorded() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let cfg = EmulatorConfig {
            iterations: 6,
            ..Default::default()
        };
        let clean = run(&s, &unit(), cfg).unwrap();
        assert_eq!(clean.last_checkpoint, None);
        assert_eq!(clean.ckpt_overhead_ns, 0);
        let ck = run(
            &s,
            &unit(),
            EmulatorConfig {
                checkpoint: Some(mario_ir::CheckpointPolicy::every(2).with_write_ns(500)),
                ..cfg
            },
        )
        .unwrap();
        // 3 writes of 500 ns on each of the 4 devices: the wall clock is
        // exactly one device's write overhead slower, and the summed
        // accounting reports every device's payments.
        assert_eq!(ck.last_checkpoint, Some(6));
        assert_eq!(ck.ckpt_overhead_ns, 4 * 3 * 500);
        assert_eq!(ck.total_ns, clean.total_ns + 1_500);
        // The per-iteration figure stays checkpoint-free.
        assert_eq!(ck.iter_ns, clean.iter_ns);
        // A zero-cost policy is timing-neutral.
        let free = run(
            &s,
            &unit(),
            EmulatorConfig {
                checkpoint: Some(mario_ir::CheckpointPolicy::every(2)),
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(free.device_clocks, clean.device_clocks);
        assert_eq!(free.last_checkpoint, Some(6));
    }

    #[test]
    fn checkpoint_buffer_counts_against_capacity() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::GPipe, 2, 8));
        // GPipe device 0 peaks at 8 B of activations; the serialization
        // buffer alone then busts a 9 B capacity at the boundary.
        let cfg = EmulatorConfig {
            mem_capacity: Some(9),
            checkpoint: Some(
                mario_ir::CheckpointPolicy::every(1).with_mem_overhead(15),
            ),
            watchdog: Duration::from_millis(300),
            ..Default::default()
        };
        let err = run(&s, &unit(), cfg).unwrap_err();
        assert!(err.is_oom(), "{err}");
        // With headroom for the buffer the run completes.
        let ok = run(
            &s,
            &unit(),
            EmulatorConfig {
                mem_capacity: Some(24),
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(ok.last_checkpoint, Some(1));
        assert_eq!(ok.max_peak_mem(), 15);
    }

    #[test]
    fn crash_report_names_the_last_cluster_checkpoint() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device: DeviceId(2),
                pc: 5,
            })
            .at_iteration(3);
        let cfg = EmulatorConfig {
            iterations: 6,
            checkpoint: Some(mario_ir::CheckpointPolicy::every(2).with_write_ns(500)),
            ..fast(EmulatorConfig::default())
        };
        let err = run_with_faults(&s, &unit(), cfg, &plan).unwrap_err();
        let report = err.fault_report().expect("fault attribution");
        assert_eq!(report.iteration, 3);
        // Every device completed iterations 0..=2 before the crash could
        // block it, so the end-of-iteration-1 checkpoint (covering 2
        // iterations) is durable cluster-wide; the end-of-iteration-3
        // write never completed anywhere.
        assert_eq!(report.last_checkpoint, 2);
    }

    #[test]
    fn recovery_resumes_from_the_last_checkpoint() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device: DeviceId(2),
                pc: 5,
            })
            .at_iteration(3);
        let base = EmulatorConfig {
            iterations: 6,
            ..fast(EmulatorConfig::default())
        };
        let policy = mario_ir::CheckpointPolicy::every(2).with_write_ns(500);
        let with_ck = EmulatorConfig {
            checkpoint: Some(policy),
            ..base
        };
        let rec = run_with_recovery(&s, &unit(), with_ck, &plan, 3).expect("recovers");
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.resumed_from, 2);
        // The checkpoint covers iterations 0-1; iteration 2 completed
        // everywhere but was not yet saved when iteration 3 crashed, so
        // exactly one completed iteration is executed again.
        assert_eq!(rec.replayed_iters, 1);
        // The final attempt is literally a fresh run of the remaining 4
        // iterations under the same policy.
        let fresh = run(
            &s,
            &unit(),
            EmulatorConfig {
                iterations: 4,
                ..with_ck
            },
        )
        .unwrap();
        assert_eq!(rec.report.device_clocks, fresh.device_clocks);
        // Checkpoint overhead is reported across all attempts, summed
        // over devices: each of the 4 devices paid 1 write in the failed
        // attempt (the end-of-iteration-3 boundary was never reached)
        // plus 2 in the final one.
        assert_eq!(rec.ckpt_overhead_ns, 4 * 3 * 500);
        // And resuming beats restarting from zero under the same plan.
        let from_zero = run_with_recovery(&s, &unit(), base, &plan, 3).expect("recovers");
        assert_eq!(from_zero.resumed_from, 0);
        assert_eq!(from_zero.replayed_iters, 3);
        assert!(
            rec.total_ns_with_replay < from_zero.total_ns_with_replay,
            "resume {} !< restart {}",
            rec.total_ns_with_replay,
            from_zero.total_ns_with_replay
        );
    }

    #[test]
    fn failed_attempt_charges_actual_write_payments() {
        // Regression: the failed attempt used to be charged the analytic
        // `overhead_ns(last_checkpoint)` — one device's writes for the
        // checkpoints that became cluster-durable — under-reporting both
        // the other devices' payments and any device-local write a fault
        // killed before the whole cluster caught up.
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        // Device 2 dies at its very last instruction of iteration 1: by
        // then every other device's communication with it has completed,
        // so devices 0, 1 and 3 finish the whole run — each paying an
        // end-of-iteration-1 write that can never become cluster-durable
        // (device 2 never reached that boundary).
        let last_pc = s.program(DeviceId(2)).len() - 1;
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device: DeviceId(2),
                pc: last_pc,
            })
            .at_iteration(1);
        let cfg = EmulatorConfig {
            iterations: 2,
            checkpoint: Some(mario_ir::CheckpointPolicy::every(1).with_write_ns(500)),
            ..fast(EmulatorConfig::default())
        };
        let err = run_with_faults(&s, &unit(), cfg, &plan).unwrap_err();
        let report = err.fault_report().expect("fault attribution");
        // Only the end-of-iteration-0 checkpoint is durable cluster-wide…
        assert_eq!(report.last_checkpoint, 1);
        // …but the attempt paid 4 writes for it plus the three orphaned
        // end-of-iteration-1 writes: 7 × 500, not `overhead_ns(1) = 500`.
        assert_eq!(report.ckpt_paid_ns, 7 * 500);
        // Recovery charges those same payments, plus the final attempt's
        // (1 remaining iteration, 4 devices).
        let rec = run_with_recovery(&s, &unit(), cfg, &plan, 3).expect("recovers");
        assert_eq!(rec.resumed_from, 1);
        assert_eq!(rec.ckpt_overhead_ns, 7 * 500 + 4 * 500);
    }

    #[test]
    fn absorbed_fault_report_names_the_device_checkpoint() {
        // Regression: absorbed-fault reports (which skip the runner's
        // root-cause fixup) used to hardcode `last_checkpoint: 0` no
        // matter how many checkpoints the device had already written.
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none()
            .with(FaultKind::Slowdown {
                device: DeviceId(1),
                factor: 4.0,
                from_pc: 0,
                until_pc: 8,
            })
            .at_iteration(2);
        let cfg = EmulatorConfig {
            iterations: 4,
            checkpoint: Some(mario_ir::CheckpointPolicy::every(1)),
            ..fast(EmulatorConfig::default())
        };
        let r = run_with_faults(&s, &unit(), cfg, &plan).unwrap();
        assert_eq!(r.faults.len(), 1, "{:?}", r.faults);
        // The slowdown fired in iteration 2, after the device's
        // end-of-iteration-1 boundary: 2 iterations were checkpointed.
        assert_eq!(r.faults[0].last_checkpoint, 2);
    }

    #[test]
    fn startup_offsets_shift_clocks_and_land_in_telemetry() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let base = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        let startup = vec![5_000u64, 0, 0, 0];
        let r = run_with_faults_startup(
            &s,
            &unit(),
            EmulatorConfig::default(),
            &FaultPlan::none(),
            &startup,
        )
        .unwrap();
        // Device 0 heads the pipeline: its 5 µs offset delays everyone.
        assert_eq!(r.total_ns, base.total_ns + 5_000);
        assert_eq!(r.telemetry.devices[0].classes.reconfig_ns, 5_000);
        assert_eq!(r.telemetry.devices[1].classes.reconfig_ns, 0);
        // The offset is a charged class, so conservation still holds.
        assert!(r.telemetry.check_conservation(&r.device_clocks).is_ok());
        // An empty slice is bit-identical to the plain entry point.
        let none =
            run_with_faults_startup(&s, &unit(), EmulatorConfig::default(), &FaultPlan::none(), &[])
                .unwrap();
        assert_eq!(none.device_clocks, base.device_clocks);
    }

    #[test]
    fn elastic_recovery_continues_on_the_shrunk_pipeline() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device: DeviceId(3),
                pc: 5,
            })
            .at_iteration(3);
        let cfg = EmulatorConfig {
            iterations: 6,
            checkpoint: Some(mario_ir::CheckpointPolicy::every(2).with_write_ns(500)),
            ..fast(EmulatorConfig::default())
        };
        let shrunk = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 3, 8));
        let startup = vec![1_000u64, 2_000, 3_000];
        let rec = run_with_elastic_recovery(&s, &unit(), cfg, &plan, 3, |report| {
            assert_eq!(report.fault, plan.faults[0]);
            Some(Reconfiguration {
                schedule: shrunk.clone(),
                cost: Box::new(unit()),
                channel_capacity: 1,
                startup_ns: startup.clone(),
                moved_bytes: 1234,
                survivors: vec![DeviceId(0), DeviceId(1), DeviceId(2)],
            })
        })
        .expect("elastic recovery completes");
        assert_eq!(rec.attempts, 2);
        assert_eq!(rec.resumed_from, 2);
        assert_eq!(rec.reconfigurations.len(), 1);
        let ev = &rec.reconfigurations[0];
        assert_eq!(ev.devices_after, 3);
        assert_eq!(ev.at_iteration, 3);
        assert_eq!(ev.moved_bytes, 1234);
        // Wall-clock charge = the slowest survivor's fetch.
        assert_eq!(ev.reconfig_ns, 3_000);
        assert_eq!(rec.reconfig_ns, 3_000);
        // The final run is the 3-deep pipeline with the redistribution
        // cost visible per device in its telemetry.
        assert_eq!(rec.report.device_clocks.len(), 3);
        for (d, &ns) in startup.iter().enumerate() {
            assert_eq!(rec.report.telemetry.devices[d].classes.reconfig_ns, ns);
        }
        // The final attempt equals a fresh startup-offset run of the
        // remaining 4 iterations on the shrunk schedule.
        let fresh = run_with_faults_startup(
            &shrunk,
            &unit(),
            EmulatorConfig {
                iterations: 4,
                ..cfg
            },
            &FaultPlan::none(),
            &startup,
        )
        .unwrap();
        assert_eq!(rec.report.device_clocks, fresh.device_clocks);
        // Declining every reconfiguration degrades to plain
        // checkpoint-restart, bit for bit.
        let plain = run_with_elastic_recovery(&s, &unit(), cfg, &plan, 3, |_| None).unwrap();
        let classic = run_with_recovery(&s, &unit(), cfg, &plan, 3).unwrap();
        assert_eq!(plain.report.device_clocks, classic.report.device_clocks);
        assert_eq!(plain.total_ns_with_replay, classic.total_ns_with_replay);
        assert!(plain.reconfigurations.is_empty());
        assert_eq!(plain.reconfig_ns, 0);
    }

    #[test]
    fn cascading_plans_replay_bit_identically_with_attribution() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::OneFOneB, 4, 8));
        let build = |seed: u64| {
            FaultPlan::single_crash_or_stall(seed, &s)
                .arming(FaultPlan::rack_failure(seed + 1, &s))
        };
        let plan = build(11);
        let rec = run_with_recovery(&s, &unit(), fast(EmulatorConfig::default()), &plan, 3)
            .expect("survives the cascade");
        // Two failed attempts — the seeded trigger, then the armed rack
        // failure — and a clean third.
        assert_eq!(rec.attempts, 3);
        assert_eq!(rec.fault_log.len(), 2);
        assert_eq!(rec.fault_log[0].fault, plan.faults[0]);
        assert_eq!(rec.fault_log[0].group, None);
        let armed = plan.armed.as_deref().unwrap();
        assert!(armed.faults.contains(&rec.fault_log[1].fault));
        assert_eq!(
            rec.fault_log[1].group.as_deref(),
            Some(armed.groups[0].name.as_str())
        );
        // Bit-identical replay from the seed.
        let again =
            run_with_recovery(&s, &unit(), fast(EmulatorConfig::default()), &build(11), 3).unwrap();
        assert_eq!(rec.fault_log, again.fault_log);
        assert_eq!(rec.report.device_clocks, again.report.device_clocks);
    }

    #[test]
    fn memory_squeeze_surfaces_as_fault_not_oom() {
        let s = generate(ScheduleConfig::new(mario_ir::SchemeKind::GPipe, 2, 8));
        let plan = FaultPlan::none().with(FaultKind::MemSqueeze {
            device: DeviceId(0),
            capacity: 4,
        });
        let err = run_with_faults(&s, &unit(), fast(EmulatorConfig::default()), &plan).unwrap_err();
        assert!(!err.is_oom());
        let report = err.fault_report().expect("fault attribution");
        assert_eq!(report.device, DeviceId(0));
        assert_eq!(report.fault, plan.faults[0]);
    }

    #[test]
    fn settle_report_survives_gappy_device_ids() {
        // An elastic shrink can leave survivors {1, 3, 6} out of an
        // original 7-device pipeline: report order no longer coincides
        // with device id, and neither the critical-device selection nor
        // the conservation bookkeeping may index reports by position.
        use mario_ir::DeviceTelemetry;
        let mk = |id: u32, clock: Nanos, ckpt: Nanos| {
            let mut telemetry = DeviceTelemetry::new(DeviceId(id));
            telemetry.classes.compute_ns = clock - ckpt;
            telemetry.classes.ckpt_sync_ns = ckpt;
            telemetry.peak_mem = 10 + id as u64;
            DeviceReport {
                clock,
                peak_mem: 10 + id as u64,
                leaked: 0,
                timeline: Vec::new(),
                absorbed: Vec::new(),
                last_checkpoint: 0,
                telemetry,
                link_sends: HashMap::new(),
                link_recv_wait: HashMap::new(),
                spans: Vec::new(),
            }
        };
        let ckpts = CkptBoard::new(7);
        ckpts.record_paid(DeviceId(1), 40);
        ckpts.record_paid(DeviceId(3), 100);
        ckpts.record_paid(DeviceId(6), 40);
        // Device 3 is critical (max clock) but sits at vector index 1;
        // a dense-id assumption would subtract device 6's paid time (or
        // index out of bounds) instead of device 3's.
        let results = vec![
            Ok(mk(1, 500, 40)),
            Ok(mk(3, 900, 100)),
            Ok(mk(6, 700, 40)),
        ];
        let cfg = EmulatorConfig {
            iterations: 2,
            ..Default::default()
        };
        let report = settle_report(results, &cfg, &FaultPlan::none(), &ckpts).unwrap();
        assert_eq!(report.total_ns, 900);
        // (900 - paid_of(critical=3)) / 2 iterations, rounded to nearest.
        assert_eq!(report.iter_ns, 400);
        // Clocks and peaks stay in report (survivor) order.
        assert_eq!(report.device_clocks, vec![500, 900, 700]);
        assert_eq!(report.peak_mem, vec![11, 13, 16]);
        assert_eq!(report.ckpt_overhead_ns, 180);
        // Telemetry keeps the real device ids, not positions.
        let ids: Vec<u32> = report.telemetry.devices.iter().map(|d| d.device.0).collect();
        assert_eq!(ids, vec![1, 3, 6]);
    }
}
