//! Emulator error types.

use mario_ir::{DeviceId, OomError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a cluster run failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EmuError {
    /// A device exceeded its memory capacity.
    Oom {
        /// The faulting device.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// The failing instruction (rendered).
        instr: String,
        /// Ledger details.
        cause: OomError,
    },
    /// A p2p receive got a message with the wrong identity.
    CommMismatch {
        /// The receiving device.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// What was expected vs found.
        detail: String,
    },
    /// A blocking p2p operation timed out — the schedule deadlocks.
    DeadlockSuspected {
        /// The blocked device.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// The blocked instruction (rendered).
        instr: String,
    },
    /// A peer device aborted, closing its channels.
    PeerFailed {
        /// The device observing the failure.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
    },
}

impl EmuError {
    /// The device that raised the error.
    pub fn device(&self) -> DeviceId {
        match self {
            EmuError::Oom { device, .. }
            | EmuError::CommMismatch { device, .. }
            | EmuError::DeadlockSuspected { device, .. }
            | EmuError::PeerFailed { device, .. } => *device,
        }
    }

    /// True for out-of-memory failures (the condition the schedule tuner
    /// penalizes, §5.3).
    pub fn is_oom(&self) -> bool {
        matches!(self, EmuError::Oom { .. })
    }
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Oom {
                device,
                pc,
                instr,
                cause,
            } => write!(f, "{device} OOM at #{pc} ({instr}): {cause}"),
            EmuError::CommMismatch { device, pc, detail } => {
                write!(f, "{device} comm mismatch at #{pc}: {detail}")
            }
            EmuError::DeadlockSuspected { device, pc, instr } => {
                write!(f, "{device} blocked at #{pc} ({instr}): deadlock suspected")
            }
            EmuError::PeerFailed { device, pc } => {
                write!(f, "{device} at #{pc}: peer device failed")
            }
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oom_classification() {
        let e = EmuError::Oom {
            device: DeviceId(3),
            pc: 7,
            instr: "F0^0".into(),
            cause: OomError {
                requested: 10,
                in_use: 95,
                capacity: 100,
            },
        };
        assert!(e.is_oom());
        assert_eq!(e.device(), DeviceId(3));
        assert!(e.to_string().contains("OOM"));
        let d = EmuError::DeadlockSuspected {
            device: DeviceId(0),
            pc: 0,
            instr: "RA0^0<d1".into(),
        };
        assert!(!d.is_oom());
    }
}
