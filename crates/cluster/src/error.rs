//! Emulator error types.

use crate::faults::FaultReport;
use mario_ir::{DeviceId, OomError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a cluster run failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EmuError {
    /// A device exceeded its memory capacity.
    Oom {
        /// The faulting device.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// The failing instruction (rendered).
        instr: String,
        /// Ledger details.
        cause: OomError,
    },
    /// A p2p receive got a message with the wrong identity.
    CommMismatch {
        /// The receiving device.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// What was expected vs found.
        detail: String,
    },
    /// A blocking p2p operation stalled past the watchdog — the schedule
    /// deadlocks.
    DeadlockSuspected {
        /// The blocked device.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// The blocked instruction (rendered).
        instr: String,
        /// The wait chain starting at `device`: each entry is blocked on
        /// the next; a repeated first entry names a true cycle.
        cycle: Vec<DeviceId>,
    },
    /// A peer device aborted, closing its channels.
    PeerFailed {
        /// The device observing the failure.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
    },
    /// An instruction names a peer no link was built for (malformed
    /// schedule).
    NoRoute {
        /// The device missing the link.
        device: DeviceId,
        /// Instruction index within the device program.
        pc: usize,
        /// The unreachable peer.
        peer: DeviceId,
    },
    /// An injected fault terminated the run (structured attribution).
    /// Boxed: the report is by far the largest payload, and `Result`s
    /// carrying this enum travel through every hot emulator path.
    Fault(Box<FaultReport>),
    /// A device thread panicked; the panic was contained and converted.
    WorkerPanicked {
        /// The panicking device.
        device: DeviceId,
        /// Panic payload, if it was a string.
        detail: String,
    },
}

impl EmuError {
    /// The device that raised the error.
    pub fn device(&self) -> DeviceId {
        match self {
            EmuError::Oom { device, .. }
            | EmuError::CommMismatch { device, .. }
            | EmuError::DeadlockSuspected { device, .. }
            | EmuError::PeerFailed { device, .. }
            | EmuError::NoRoute { device, .. }
            | EmuError::WorkerPanicked { device, .. } => *device,
            EmuError::Fault(report) => report.device,
        }
    }

    /// True for out-of-memory failures (the condition the schedule tuner
    /// penalizes, §5.3).
    pub fn is_oom(&self) -> bool {
        matches!(self, EmuError::Oom { .. })
    }

    /// The structured fault report, when the failure was injected.
    pub fn fault_report(&self) -> Option<&FaultReport> {
        match self {
            EmuError::Fault(report) => Some(report.as_ref()),
            _ => None,
        }
    }

    /// Root-cause rank used by the runner when several devices fail at
    /// once: lower wins. Injected faults outrank the secondary errors
    /// they cascade into (peer failures, watchdog timeouts).
    pub(crate) fn priority(&self) -> u8 {
        match self {
            EmuError::Fault(_) => 0,
            EmuError::Oom { .. } => 1,
            EmuError::CommMismatch { .. } => 2,
            EmuError::NoRoute { .. } => 3,
            EmuError::DeadlockSuspected { .. } => 4,
            EmuError::PeerFailed { .. } => 5,
            EmuError::WorkerPanicked { .. } => 6,
        }
    }
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Oom {
                device,
                pc,
                instr,
                cause,
            } => write!(f, "{device} OOM at #{pc} ({instr}): {cause}"),
            EmuError::CommMismatch { device, pc, detail } => {
                write!(f, "{device} comm mismatch at #{pc}: {detail}")
            }
            EmuError::DeadlockSuspected {
                device,
                pc,
                instr,
                cycle,
            } => {
                write!(f, "{device} blocked at #{pc} ({instr}): deadlock suspected")?;
                if !cycle.is_empty() {
                    let chain: Vec<String> = cycle.iter().map(|d| d.to_string()).collect();
                    write!(f, " [wait chain: {}]", chain.join(" -> "))?;
                }
                Ok(())
            }
            EmuError::PeerFailed { device, pc } => {
                write!(f, "{device} at #{pc}: peer device failed")
            }
            EmuError::NoRoute { device, pc, peer } => {
                write!(f, "{device} at #{pc}: no link to {peer}")
            }
            EmuError::Fault(report) => write!(f, "injected fault: {report}"),
            EmuError::WorkerPanicked { device, detail } => {
                write!(f, "{device} worker panicked: {detail}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;

    #[test]
    fn oom_classification() {
        let e = EmuError::Oom {
            device: DeviceId(3),
            pc: 7,
            instr: "F0^0".into(),
            cause: OomError {
                requested: 10,
                in_use: 95,
                capacity: 100,
            },
        };
        assert!(e.is_oom());
        assert_eq!(e.device(), DeviceId(3));
        assert!(e.to_string().contains("OOM"));
        let d = EmuError::DeadlockSuspected {
            device: DeviceId(0),
            pc: 0,
            instr: "RA0^0<d1".into(),
            cycle: vec![],
        };
        assert!(!d.is_oom());
    }

    #[test]
    fn deadlock_display_names_the_wait_chain() {
        let d = EmuError::DeadlockSuspected {
            device: DeviceId(0),
            pc: 4,
            instr: "RA1^0<d1".into(),
            cycle: vec![DeviceId(0), DeviceId(1), DeviceId(0)],
        };
        let s = d.to_string();
        assert!(s.contains("wait chain"), "{s}");
        assert!(s.contains("d0 -> d1 -> d0"), "{s}");
    }

    #[test]
    fn fault_errors_carry_their_report_and_win_priority() {
        let report = FaultReport {
            fault: FaultKind::Crash {
                device: DeviceId(2),
                pc: 9,
            },
            device: DeviceId(2),
            pc: 9,
            instr: "B1^0".into(),
            blocked_peer: None,
            vtime: 1234,
            iteration: 0,
            last_checkpoint: 0,
            ckpt_paid_ns: 0,
            group: None,
            detail: "device crashed".into(),
        };
        let e = EmuError::Fault(Box::new(report.clone()));
        assert_eq!(e.device(), DeviceId(2));
        assert_eq!(e.fault_report(), Some(&report));
        assert!(e.priority() < EmuError::PeerFailed { device: DeviceId(0), pc: 0 }.priority());
        assert!(e.to_string().contains("crash"), "{e}");
    }
}
