//! Emulator integration: determinism under stress, fault attribution,
//! timeline consistency, straggler model.

use mario_cluster::{run, EmulatorConfig};
use mario_ir::{SchemeKind, UnitCost};
use mario_schedules::{generate, ScheduleConfig};
use std::time::Duration;

fn unit() -> UnitCost {
    UnitCost::paper_grid()
}

#[test]
fn sixteen_device_run_is_deterministic_under_contention() {
    // More device threads than cores forces heavy preemption; virtual time
    // must not care.
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 16, 32));
    let a = run(&s, &unit(), EmulatorConfig::default()).unwrap();
    for _ in 0..3 {
        let b = run(&s, &unit(), EmulatorConfig::default()).unwrap();
        assert_eq!(a.device_clocks, b.device_clocks);
    }
}

#[test]
fn straggler_spread_slows_the_iteration_deterministically() {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 8, 16));
    let exact = run(&s, &unit(), EmulatorConfig::default()).unwrap();
    let cfg = EmulatorConfig {
        straggler_spread: 0.10,
        ..Default::default()
    };
    let slow1 = run(&s, &unit(), cfg).unwrap();
    let slow2 = run(&s, &unit(), cfg).unwrap();
    assert_eq!(slow1.total_ns, slow2.total_ns, "straggler map is seeded");
    assert!(slow1.total_ns > exact.total_ns);
    // Bounded: at most the full spread.
    assert!((slow1.total_ns as f64) < exact.total_ns as f64 * 1.11);
}

#[test]
fn different_seeds_give_different_straggler_maps() {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 8, 16));
    let a = run(
        &s,
        &unit(),
        EmulatorConfig {
            straggler_spread: 0.10,
            seed: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let b = run(
        &s,
        &unit(),
        EmulatorConfig {
            straggler_spread: 0.10,
            seed: 2,
            ..Default::default()
        },
    )
    .unwrap();
    assert_ne!(a.device_clocks, b.device_clocks);
}

#[test]
fn timeline_events_are_causally_consistent() {
    let s = generate(ScheduleConfig::new(SchemeKind::Chimera, 4, 8));
    let r = run(
        &s,
        &unit(),
        EmulatorConfig {
            channel_capacity: 2,
            record_timeline: true,
            ..Default::default()
        },
    )
    .unwrap();
    // Per device, events are strictly ordered and contiguous in time.
    for d in 0..4u32 {
        let mut last_end = 0;
        for e in r.timeline.iter().filter(|e| e.device.0 == d) {
            assert!(e.start >= last_end, "overlap on d{d}: {e:?}");
            assert!(e.end >= e.start);
            last_end = e.end;
        }
        assert_eq!(last_end, r.device_clocks[d as usize]);
    }
}

#[test]
fn corrupted_schedule_reports_comm_mismatch_not_hang() {
    // Swap two receives on a device: identities no longer match FIFO order.
    let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 4));
    let d1 = s.program_mut(mario_ir::DeviceId(1));
    let ra: Vec<usize> = d1
        .iter()
        .filter(|(_, i)| matches!(i.kind, mario_ir::InstrKind::RecvAct { .. }))
        .map(|(pos, _)| pos)
        .collect();
    d1.shift(ra[1], ra[0]);
    let err = run(
        &s,
        &unit(),
        EmulatorConfig {
            watchdog: Duration::from_millis(500),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            mario_cluster::EmuError::CommMismatch { .. }
                | mario_cluster::EmuError::DeadlockSuspected { .. }
                | mario_cluster::EmuError::PeerFailed { .. }
        ),
        "{err}"
    );
}

#[test]
fn truncated_program_is_detected_without_hanging() {
    // Device 1 never sends its gradients: device 0 must not hang forever.
    // With deterministic link settlement the diagnosis is precise and
    // stable across interleavings: d1's sends were truncated away, so the
    // gradient link was never declared and d0's recv has no route. (The
    // old racy teardown reported DeadlockSuspected or PeerFailed
    // depending on which thread unwound first.)
    let mut s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 2, 2));
    let d1 = s.program_mut(mario_ir::DeviceId(1));
    while d1.len() > 2 {
        d1.remove(d1.len() - 1);
    }
    let err = run(
        &s,
        &unit(),
        EmulatorConfig {
            watchdog: Duration::from_millis(300),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            mario_cluster::EmuError::NoRoute {
                device: mario_ir::DeviceId(0),
                ..
            }
        ),
        "{err}"
    );
}

#[test]
fn deadlocked_64_device_ring_is_detected_within_budget() {
    use mario_cluster::{EmulatorBackend, EmuError};
    use mario_ir::{DeviceId, Instr, Schedule, Topology};

    // A 64-wide recv-first ring: every device waits for its successor
    // before sending to its predecessor, so nobody ever sends — a
    // genuine deadlock at a device count where watchdog mis-scaling
    // used to stall for the full ceiling before reporting.
    const D: u32 = 64;
    let topo = Topology::new(SchemeKind::OneFOneB, D);
    let mut s = Schedule::empty(topo, 1, vec![0]);
    for j in 0..D {
        let next = DeviceId((j + 1) % D);
        let prev = DeviceId((j + D - 1) % D);
        let p = s.program_mut(DeviceId(j));
        p.push(Instr::recv_act(0u32, 0u32, next));
        p.push(Instr::send_act(0u32, 0u32, prev));
    }
    let cfg = EmulatorConfig {
        watchdog: Duration::from_millis(300),
        ..Default::default()
    };
    // The scaled watchdog grows with the *per-device* instruction count
    // (2 here), never with the 64-wide schedule total: it must sit at
    // the configured floor.
    assert_eq!(mario_cluster::effective_watchdog(&s, &cfg), cfg.watchdog);
    let t0 = std::time::Instant::now();
    let err = run(&s, &unit(), cfg).unwrap_err();
    let elapsed = t0.elapsed();
    assert!(matches!(err, EmuError::DeadlockSuspected { .. }), "{err}");
    assert!(
        elapsed < Duration::from_secs(10),
        "deadlock detection took {elapsed:?}, budget was ~300ms + teardown"
    );
    // The event backend needs no watchdog at all: quiescence finds the
    // same deadlock in zero virtual time and names the full ring.
    let err = run(
        &s,
        &unit(),
        EmulatorConfig {
            backend: EmulatorBackend::Event,
            ..cfg
        },
    )
    .unwrap_err();
    match err {
        EmuError::DeadlockSuspected { device, cycle, .. } => {
            assert_eq!(device, DeviceId(0));
            // The chain walks the whole ring and closes on the start.
            assert_eq!(cycle.len() as u32, D + 1);
            assert_eq!(cycle.first(), cycle.last());
        }
        e => panic!("expected deadlock, got {e}"),
    }
}

#[test]
fn forty_iterations_accumulate_linearly() {
    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
    let one = run(&s, &unit(), EmulatorConfig::default()).unwrap();
    let many = run(
        &s,
        &unit(),
        EmulatorConfig {
            iterations: 40,
            ..Default::default()
        },
    )
    .unwrap();
    // Steady-state per-iteration time can only be <= the cold first
    // iteration, and at least the pure compute bound (3N units).
    assert!(many.iter_ns <= one.total_ns);
    assert!(many.iter_ns >= 8 * 3 * 1_000);
}
