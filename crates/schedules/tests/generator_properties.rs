//! Generator-level properties: instruction counts, warmup structure,
//! memory profiles and makespans across the whole (scheme, D, N) space.

use mario_ir::{DeviceId, InstrTag, MicroId, PartId, SchemeKind};
use mario_schedules::{generate, generate_compute, unit_makespan, ScheduleConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 1F1B makespan closed form holds for all sizes with N >= D.
    #[test]
    fn one_f_one_b_makespan_closed_form(d in 1u32..10, extra in 0u32..12) {
        let n = d + extra;
        let s = generate_compute(SchemeKind::OneFOneB, d, n);
        prop_assert_eq!(unit_makespan(&s), ((d - 1) * 3 + n * 3) as u64);
    }

    /// Every device sees each of its micro-batches exactly once per
    /// direction (forward and backward counts match the route structure).
    #[test]
    fn compute_counts_match_routes(
        d in 2u32..6,
        k in 1u32..4,
        chunks in 1u32..4,
    ) {
        for scheme in [
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks },
            SchemeKind::Wave { chunks },
        ] {
            let d = if matches!(scheme, SchemeKind::Chimera) && d % 2 == 1 {
                d + 1
            } else {
                d
            };
            let n = k * d * 2; // satisfies every scheme's divisibility rule
            let s = generate_compute(scheme, d, n);
            prop_assert_eq!(
                s.count_tag(InstrTag::Forward),
                s.expected_forward_count(),
                "{:?} D={} N={}",
                scheme,
                d,
                n
            );
            prop_assert_eq!(
                s.count_tag(InstrTag::Backward),
                s.expected_forward_count()
            );
        }
    }

    /// 1F1B warmup depth: device d starts with exactly min(D-1-d, N)
    /// forwards before its first backward.
    #[test]
    fn one_f_one_b_warmup_depth(d in 2u32..8, n in 1u32..20) {
        let s = generate_compute(SchemeKind::OneFOneB, d, n);
        for dev in 0..d {
            let prog = s.program(DeviceId(dev));
            let first_bw = prog
                .position(|i| i.kind.tag() == InstrTag::Backward)
                .unwrap();
            let warmup = prog.instrs()[..first_bw]
                .iter()
                .filter(|i| i.kind.is_compute())
                .count() as u32;
            // One forward beyond warmup belongs to the first 1F1B pair.
            let expect = (d - 1 - dev).min(n);
            let expect = if n > expect { expect + 1 } else { expect };
            prop_assert_eq!(warmup, expect, "device {} of D={} N={}", dev, d, n);
        }
    }

    /// Chimera splits micro-batches evenly across the two directions.
    #[test]
    fn chimera_balances_directions(dh in 1u32..4, nh in 1u32..6) {
        let d = 2 * dh;
        let n = 2 * nh;
        let s = generate_compute(SchemeKind::Chimera, d, n);
        let down = s.routes.iter().filter(|&&r| r == 0).count();
        let up = s.routes.iter().filter(|&&r| r == 1).count();
        prop_assert_eq!(down, up);
        // Each direction's head device hosts that direction's first
        // forward.
        prop_assert!(s
            .program(DeviceId(0))
            .forward_pos(MicroId(0), PartId(0))
            .is_some());
        prop_assert!(s
            .program(DeviceId(d - 1))
            .forward_pos(MicroId(1), PartId(1))
            .is_some());
    }

    /// Comm insertion emits exactly one SA per device-crossing forward hop
    /// and one SG per crossing backward hop.
    #[test]
    fn comm_counts_match_crossings(d in 2u32..6, k in 1u32..3) {
        let n = 2 * k * d;
        for scheme in [SchemeKind::OneFOneB, SchemeKind::Interleave { chunks: 2 }] {
            let s = generate(ScheduleConfig::new(scheme, d, n));
            let mut crossings = 0usize;
            for m in 0..n {
                let path = s.forward_path_of(MicroId(m));
                crossings += path
                    .windows(2)
                    .filter(|w| w[0].0 != w[1].0)
                    .count();
            }
            prop_assert_eq!(s.count_tag(InstrTag::SendAct), crossings, "{:?}", scheme);
            prop_assert_eq!(s.count_tag(InstrTag::RecvAct), crossings);
            prop_assert_eq!(s.count_tag(InstrTag::SendGrad), crossings);
            prop_assert_eq!(s.count_tag(InstrTag::RecvGrad), crossings);
        }
    }

    /// GPipe memory dominates 1F1B memory on every device.
    #[test]
    fn gpipe_memory_dominates_1f1b(d in 2u32..8, n in 2u32..16) {
        let g = generate_compute(SchemeKind::GPipe, d, n);
        let v = generate_compute(SchemeKind::OneFOneB, d, n);
        let gp = g.peak_on_the_fly_per_device(true);
        let vp = v.peak_on_the_fly_per_device(true);
        for dev in 0..d as usize {
            prop_assert!(gp[dev] >= vp[dev]);
        }
    }
}
