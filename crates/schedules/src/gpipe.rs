//! GPipe schedule (Huang et al., NeurIPS'19): all forwards, then all
//! backwards. Maximally simple, maximally memory-hungry: device 0 holds all
//! `N` micro-batches' activations at once (Table 1: `N × M_θ`).

use mario_ir::{DeviceId, Instr, Schedule, SchemeKind, Topology};

/// Generates the compute-only GPipe schedule for `devices` devices and
/// `micros` micro-batches.
pub fn generate_compute(devices: u32, micros: u32) -> Schedule {
    let topo = Topology::new(SchemeKind::GPipe, devices);
    let mut s = Schedule::empty(topo, micros, vec![0; micros as usize]);
    for d in 0..devices {
        let prog = s.program_mut(DeviceId(d));
        for m in 0..micros {
            prog.push(Instr::forward(m, 0u32));
        }
        for m in 0..micros {
            prog.push(Instr::backward(m, 0u32));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::validate;

    #[test]
    fn gpipe_is_valid() {
        let s = generate_compute(4, 8);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn gpipe_peak_memory_is_n_everywhere() {
        let s = generate_compute(4, 8);
        assert_eq!(s.peak_on_the_fly_per_device(true), vec![8; 4]);
    }

    #[test]
    fn instruction_counts() {
        let s = generate_compute(3, 5);
        assert_eq!(s.total_instrs(), 3 * 5 * 2);
    }
}
