//! A generic dependency-driven list scheduler.
//!
//! Some schemes (1F1B, Interleave) have well-known closed-form instruction
//! orders; others (Chimera's bidirectional merge, wave pipelines) are easier
//! to *derive* than to transcribe. This engine performs a greedy
//! earliest-start list scheduling over the virtual-pipeline dependency graph
//! under per-device in-flight limits, and emits the resulting per-device
//! compute order as a schedule. The same mechanism doubles as a reference
//! implementation to cross-check the closed-form generators in tests.
//!
//! Model (the paper's unit grid): forwards take 1 unit, backwards take 2,
//! communication is free. Readiness rules:
//!
//! * `F(m, hop0)` is ready at t=0, but *gated* by the in-flight limit of its
//!   injection device (this is what differentiates GPipe from 1F1B);
//! * `F(m, hop i)` is ready when `F(m, hop i-1)` finished;
//! * `B(m, last hop)` is ready when `F(m, last hop)` finished;
//! * `B(m, hop i)` is ready when both `F(m, hop i)` and `B(m, hop i+1)`
//!   finished.
//!
//! Ties prefer backwards over forwards (the 1F1B discipline), then lower
//! micro ids.

use mario_ir::{DeviceId, Instr, MicroId, PartId, Schedule, Topology};
use std::collections::HashMap;

/// One schedulable unit of compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    micro: u32,
    hop: u32,
    forward: bool,
}

/// Policy knobs for the engine.
#[derive(Debug, Clone)]
pub struct EnginePolicy {
    /// `limits[device][route]`: maximum number of route-`route` micro-batches
    /// simultaneously "on the fly" at `device` (forward started here,
    /// backward not yet finished here). Use `u32::MAX` for unlimited.
    pub limits: Vec<Vec<u32>>,
}

impl EnginePolicy {
    /// No limits anywhere: produces GPipe-like eager injection.
    pub fn unlimited(devices: u32, routes: u32) -> Self {
        Self {
            limits: vec![vec![u32::MAX; routes as usize]; devices as usize],
        }
    }

    /// The 1F1B limit: device `d` keeps at most `D - d` micro-batches on the
    /// fly.
    pub fn one_f_one_b(devices: u32) -> Self {
        Self {
            limits: (0..devices).map(|d| vec![devices - d]).collect(),
        }
    }

    /// The Chimera limit: each direction injects at most `D/2` micro-batches
    /// at its head device.
    pub fn chimera(devices: u32) -> Self {
        let half = devices / 2;
        let mut limits = vec![vec![u32::MAX, u32::MAX]; devices as usize];
        limits[0][0] = half; // down pipeline injects at device 0
        limits[devices as usize - 1][1] = half; // up pipeline injects at D-1
        Self { limits }
    }

    /// A wave-pipeline limit: device `d` keeps at most `D - d/2` on the fly
    /// (looser than 1F1B because each device hosts several chunks).
    pub fn wave(devices: u32) -> Self {
        Self {
            limits: (0..devices).map(|d| vec![devices - d / 2]).collect(),
        }
    }
}

/// Derives a compute-only schedule for `topology` with `micros` micro-batches
/// and the given per-micro `routes`, under `policy`.
pub fn derive_schedule(
    topology: Topology,
    micros: u32,
    routes: Vec<u32>,
    policy: &EnginePolicy,
) -> Schedule {
    const FW_T: u64 = 1;
    const BW_T: u64 = 2;

    let paths: Vec<Vec<(DeviceId, PartId)>> = (0..topology.num_routes())
        .map(|r| topology.forward_path(r))
        .collect();
    let devices = topology.devices as usize;

    // Remaining dependency counts and finish times.
    let mut finish: HashMap<Item, u64> = HashMap::new();
    let mut remaining: HashMap<Item, u32> = HashMap::new();
    let mut ready_time: HashMap<Item, u64> = HashMap::new();
    // Per-device ready and gated pools.
    let mut ready: Vec<Vec<Item>> = vec![Vec::new(); devices];
    let mut gated: Vec<Vec<Item>> = vec![Vec::new(); devices];
    let mut in_flight: Vec<Vec<u32>> = vec![vec![0; topology.num_routes() as usize]; devices];
    let mut clocks: Vec<u64> = vec![0; devices];
    let mut order: Vec<Vec<Instr>> = vec![Vec::new(); devices];

    let hop_of = |m: u32, hop: u32| -> (DeviceId, PartId) {
        paths[routes[m as usize] as usize][hop as usize]
    };
    let path_len = |m: u32| -> u32 { paths[routes[m as usize] as usize].len() as u32 };

    // `first_hop_on_dev[route][device]`: the first hop index of that route
    // landing on that device. In-flight gating applies only at a micro's
    // first arrival on a device (and the matching release happens at the
    // backward of that same hop — the last backward the device runs for the
    // micro), so routes crossing a device several times (Interleave, Wave)
    // are counted once and mid-route forwards are never blocked.
    let first_hop_on_dev: Vec<Vec<Option<u32>>> = paths
        .iter()
        .map(|path| {
            let mut firsts = vec![None; devices];
            for (hop, &(d, _)) in path.iter().enumerate() {
                if firsts[d.index()].is_none() {
                    firsts[d.index()] = Some(hop as u32);
                }
            }
            firsts
        })
        .collect();

    // Seed dependency counters.
    for m in 0..micros {
        let len = path_len(m);
        for hop in 0..len {
            let f = Item {
                micro: m,
                hop,
                forward: true,
            };
            let b = Item {
                micro: m,
                hop,
                forward: false,
            };
            remaining.insert(f, if hop == 0 { 0 } else { 1 });
            remaining.insert(b, if hop + 1 == len { 1 } else { 2 });
        }
        let inj = Item {
            micro: m,
            hop: 0,
            forward: true,
        };
        ready_time.insert(inj, 0);
        let (d, _) = hop_of(m, 0);
        ready[d.index()].push(inj);
    }

    let total_items: usize = (0..micros).map(|m| 2 * path_len(m) as usize).sum();
    let mut done = 0usize;

    // (start time, is-forward, micro, hop): lower sorts first, so ties
    // prefer backwards, then lower micros, then lower hops.
    type FireKey = (u64, bool, u32, u32);

    while done < total_items {
        // Pick the (device, item) pair with the globally smallest start time.
        let mut best: Option<(usize, usize, FireKey)> = None;
        for d in 0..devices {
            for (idx, &it) in ready[d].iter().enumerate() {
                let start = clocks[d].max(ready_time[&it]);
                let key = (start, it.forward, it.micro, it.hop);
                if best.is_none_or(|(_, _, bk)| key < bk) {
                    best = Some((d, idx, key));
                }
            }
        }
        let (d, idx, (start, ..)) = best.expect("scheduler stalled: dependency cycle");
        let it = ready[d].swap_remove(idx);
        let (dev, part) = hop_of(it.micro, it.hop);
        debug_assert_eq!(dev.index(), d);

        // Gate first-arrival forwards by the in-flight limit.
        let route = routes[it.micro as usize] as usize;
        let is_first_arrival = first_hop_on_dev[route][d] == Some(it.hop);
        if it.forward && is_first_arrival {
            if in_flight[d][route] >= policy.limits[d][route] {
                gated[d].push(it);
                continue;
            }
            in_flight[d][route] += 1;
        }

        let dur = if it.forward { FW_T } else { BW_T };
        let end = start + dur;
        clocks[d] = end;
        finish.insert(it, end);
        done += 1;
        order[d].push(if it.forward {
            Instr::forward(it.micro, part.0)
        } else {
            Instr::backward(it.micro, part.0)
        });

        // Wake dependents.
        let len = path_len(it.micro);
        let mut wake = |target: Item, t: u64| {
            let rem = remaining.get_mut(&target).expect("dependent exists");
            *rem -= 1;
            let rt = ready_time.entry(target).or_insert(0);
            *rt = (*rt).max(t);
            if *rem == 0 {
                let (td, _) = paths[routes[target.micro as usize] as usize]
                    [target.hop as usize];
                ready[td.index()].push(target);
            }
        };
        if it.forward {
            if it.hop + 1 < len {
                wake(
                    Item {
                        micro: it.micro,
                        hop: it.hop + 1,
                        forward: true,
                    },
                    end,
                );
            }
            wake(
                Item {
                    micro: it.micro,
                    hop: it.hop,
                    forward: false,
                },
                end,
            );
        } else {
            if it.hop > 0 {
                wake(
                    Item {
                        micro: it.micro,
                        hop: it.hop - 1,
                        forward: false,
                    },
                    end,
                );
            }
            // The backward of the micro's first-arrival hop is the last
            // backward this device runs for it: release the in-flight slot
            // and maybe un-gate a queued arrival.
            if !is_first_arrival {
                continue;
            }
            in_flight[d][route] -= 1;
            if let Some(pos) = gated[d]
                .iter()
                .enumerate()
                .filter(|(_, g)| routes[g.micro as usize] as usize == route)
                .min_by_key(|(_, g)| g.micro)
                .map(|(i, _)| i)
            {
                let g = gated[d].swap_remove(pos);
                ready[d].push(g);
            }
        }
    }

    let programs = order
        .into_iter()
        .enumerate()
        .map(|(d, instrs)| mario_ir::DeviceProgram::from_instrs(DeviceId(d as u32), instrs))
        .collect();
    Schedule::from_programs(topology, micros, routes, programs)
}

/// The makespan (total unit-grid time) of the derived order, re-simulated
/// under the same rules — exposed for tests and scheme comparisons.
pub fn unit_makespan(schedule: &Schedule) -> u64 {
    // Re-run a simple in-order simulation of the compute-only lists: an
    // instruction starts when the device is free and its cross-device
    // dependency (previous-hop forward / next-hop backward) has finished.
    const FW_T: u64 = 1;
    const BW_T: u64 = 2;
    // Split halves: Bi + Bw = B on the unit grid.
    const BI_T: u64 = 1;
    const BWGT_T: u64 = 1;
    let devices = schedule.devices() as usize;
    let mut pc = vec![0usize; devices];
    let mut clocks = vec![0u64; devices];
    // Phase 0 = forward, 1 = backward or its input half, 2 = weight half.
    let mut finish: HashMap<(u8, u32, u32), u64> = HashMap::new(); // (phase, micro, hop)
    let hopidx = |m: MicroId, d: DeviceId, p: PartId| -> u32 {
        schedule
            .forward_path_of(m)
            .iter()
            .position(|&(dd, pp)| dd == d && pp == p)
            .expect("on route") as u32
    };
    loop {
        let mut fired = false;
        let mut all_done = true;
        for d in 0..devices {
            let prog = schedule.program(DeviceId(d as u32));
            let Some(&i) = prog.instrs().get(pc[d]) else {
                continue;
            };
            all_done = false;
            let hop = hopidx(i.micro, DeviceId(d as u32), i.part);
            let (phase, dep, dur) = match i.kind {
                mario_ir::InstrKind::Forward { .. } => {
                    let dep = if hop == 0 {
                        Some(0)
                    } else {
                        finish.get(&(0, i.micro.0, hop - 1)).copied()
                    };
                    (0u8, dep, FW_T)
                }
                mario_ir::InstrKind::Backward | mario_ir::InstrKind::BackwardInput => {
                    // The input half carries the same cross-stage dependency
                    // as the full backward; only its duration differs.
                    let len = schedule.forward_path_of(i.micro).len() as u32;
                    let fw_done = finish.get(&(0, i.micro.0, hop)).copied();
                    let dep = if hop + 1 == len {
                        fw_done
                    } else {
                        match (fw_done, finish.get(&(1, i.micro.0, hop + 1)).copied()) {
                            (Some(a), Some(b)) => Some(a.max(b)),
                            _ => None,
                        }
                    };
                    let dur = if matches!(i.kind, mario_ir::InstrKind::Backward) {
                        BW_T
                    } else {
                        BI_T
                    };
                    (1, dep, dur)
                }
                mario_ir::InstrKind::BackwardWeight => {
                    // Local only: waits for its own input half.
                    (2, finish.get(&(1, i.micro.0, hop)).copied(), BWGT_T)
                }
                _ => (3, Some(0), 0),
            };
            if let Some(dep) = dep {
                let start = clocks[d].max(dep);
                clocks[d] = start + dur;
                finish.insert((phase, i.micro.0, hop), start + dur);
                pc[d] += 1;
                fired = true;
            }
        }
        if all_done {
            return clocks.into_iter().max().unwrap_or(0);
        }
        assert!(fired, "unit_makespan: schedule deadlocks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{validate, SchemeKind};

    #[test]
    fn engine_reproduces_1f1b_memory_profile() {
        let d = 4u32;
        let topo = Topology::new(SchemeKind::OneFOneB, d);
        let s = derive_schedule(topo, 8, vec![0; 8], &EnginePolicy::one_f_one_b(d));
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
        // Device d keeps at most D - d micro-batches on the fly.
        let peaks = s.peak_on_the_fly_per_device(true);
        assert_eq!(peaks, vec![4, 3, 2, 1]);
    }

    #[test]
    fn gpipe_policy_floods_device_zero() {
        let topo = Topology::new(SchemeKind::GPipe, 4);
        let s = derive_schedule(topo, 8, vec![0; 8], &EnginePolicy::unlimited(4, 1));
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
        assert_eq!(s.peak_on_the_fly_per_device(true)[0], 8);
    }

    #[test]
    fn one_f_one_b_beats_gpipe_makespan_is_equal_here() {
        // With free comm and balanced stages GPipe and 1F1B have the same
        // critical path; 1F1B wins on memory, not time.
        let topo_g = Topology::new(SchemeKind::GPipe, 4);
        let g = derive_schedule(topo_g, 8, vec![0; 8], &EnginePolicy::unlimited(4, 1));
        let topo_v = Topology::new(SchemeKind::OneFOneB, 4);
        let v = derive_schedule(topo_v, 8, vec![0; 8], &EnginePolicy::one_f_one_b(4));
        assert_eq!(unit_makespan(&g), unit_makespan(&v));
    }

    #[test]
    fn chimera_policy_produces_valid_bidirectional_schedule() {
        let d = 4u32;
        let topo = Topology::new(SchemeKind::Chimera, d);
        let routes: Vec<u32> = (0..8).map(|m| m % 2).collect();
        let s = derive_schedule(topo, 8, routes, &EnginePolicy::chimera(d));
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
        // Table 1: Chimera peak activation lies in [D/2+1, D] per device.
        for (dev, &peak) in s.peak_on_the_fly_per_device(true).iter().enumerate() {
            assert!(
                peak as u32 <= d,
                "device {dev} holds {peak} > D on-the-fly micro-batches"
            );
        }
    }

    #[test]
    fn derived_schedules_have_every_compute_instr() {
        let d = 6u32;
        let topo = Topology::new(SchemeKind::Chimera, d);
        let n = 12u32;
        let routes: Vec<u32> = (0..n).map(|m| m % 2).collect();
        let s = derive_schedule(topo, n, routes, &EnginePolicy::chimera(d));
        assert_eq!(
            s.count_tag(mario_ir::InstrTag::Forward),
            s.expected_forward_count()
        );
        assert_eq!(
            s.count_tag(mario_ir::InstrTag::Backward),
            s.expected_forward_count()
        );
    }

    #[test]
    fn wave_policy_is_valid() {
        let topo = Topology::new(SchemeKind::Wave { chunks: 2 }, 4);
        let s = derive_schedule(topo, 8, vec![0; 8], &EnginePolicy::wave(4));
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn makespan_respects_pipeline_lower_bound() {
        // With D stages and N micros, the last device cannot finish before
        // it has processed all N forwards + N backwards, and the first
        // forward cannot arrive before D-1 units.
        let d = 4u32;
        let n = 8u64;
        let topo = Topology::new(SchemeKind::OneFOneB, d);
        let s = derive_schedule(topo, n as u32, vec![0; n as usize], &EnginePolicy::one_f_one_b(d));
        let m = unit_makespan(&s);
        assert!(m >= (d as u64 - 1) + 3 * n);
        // And greedy scheduling should achieve the classic 1F1B makespan
        // (D-1) warmup + ... within a small slack.
        assert!(m <= (d as u64 - 1) * 3 + 3 * n, "makespan {m} too large");
    }
}
