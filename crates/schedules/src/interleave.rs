//! The interleaved 1F1B schedule ("W" shape; Megatron-LM virtual pipeline,
//! Narayanan et al., SC'21): each device holds `v` model chunks and
//! micro-batches wrap around the device ring `v` times, shrinking the bubble
//! by `v` at the cost of extra activation memory
//! (Table 1: `[(D+1), (3D-2)] × M_θ/2` for `v = 2`).
//!
//! The ordering below follows Megatron's `get_model_chunk_id` /
//! warmup-count logic: micro-batches advance in groups of `D` per chunk,
//! the warmup length of device `d` is `(D-d-1)·2 + (v-1)·D`, and the steady
//! phase alternates one forward with one backward.

use mario_ir::{DeviceId, Instr, Schedule, SchemeKind, Topology};

/// Maps the `k`-th forward slot of a device to `(micro, chunk)`.
fn forward_slot(k: u32, devices: u32, chunks: u32) -> (u32, u32) {
    let group = k / (devices * chunks);
    let in_group = k % (devices * chunks);
    let chunk = in_group / devices;
    let micro = group * devices + in_group % devices;
    (micro, chunk)
}

/// Maps the `k`-th backward slot of a device to `(micro, chunk)`.
fn backward_slot(k: u32, devices: u32, chunks: u32) -> (u32, u32) {
    let group = k / (devices * chunks);
    let in_group = k % (devices * chunks);
    let chunk = chunks - 1 - in_group / devices;
    let micro = group * devices + in_group % devices;
    (micro, chunk)
}

/// Generates the compute-only interleaved schedule.
///
/// # Panics
/// If `micros` is not a multiple of `devices` (Megatron's requirement) or
/// `chunks == 0`.
pub fn generate_compute(devices: u32, micros: u32, chunks: u32) -> Schedule {
    assert!(chunks > 0, "interleave needs at least one chunk");
    assert!(
        micros.is_multiple_of(devices),
        "interleaved schedule requires micros ({micros}) to be a multiple of devices ({devices})"
    );
    let topo = Topology::new(SchemeKind::Interleave { chunks }, devices);
    let mut s = Schedule::empty(topo, micros, vec![0; micros as usize]);
    let total = micros * chunks;
    for d in 0..devices {
        let prog = s.program_mut(DeviceId(d));
        let warmup = ((devices - d - 1) * 2 + (chunks - 1) * devices).min(total);
        for k in 0..warmup {
            let (m, c) = forward_slot(k, devices, chunks);
            prog.push(Instr::forward(m, c));
        }
        for i in 0..(total - warmup) {
            let (fm, fc) = forward_slot(warmup + i, devices, chunks);
            prog.push(Instr::forward(fm, fc));
            let (bm, bc) = backward_slot(i, devices, chunks);
            prog.push(Instr::backward(bm, bc));
        }
        for i in (total - warmup)..total {
            let (bm, bc) = backward_slot(i, devices, chunks);
            prog.push(Instr::backward(bm, bc));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::validate;

    #[test]
    fn slot_maps_cycle_through_chunks_in_groups_of_d() {
        // D = 4, v = 2: forwards go m0..m3 chunk0, m0..m3 chunk1, m4..m7
        // chunk0, ...
        let seq: Vec<(u32, u32)> = (0..16).map(|k| forward_slot(k, 4, 2)).collect();
        assert_eq!(&seq[0..4], &[(0, 0), (1, 0), (2, 0), (3, 0)]);
        assert_eq!(&seq[4..8], &[(0, 1), (1, 1), (2, 1), (3, 1)]);
        assert_eq!(&seq[8..12], &[(4, 0), (5, 0), (6, 0), (7, 0)]);
        // Backwards retire chunks in reverse order.
        assert_eq!(backward_slot(0, 4, 2), (0, 1));
        assert_eq!(backward_slot(4, 4, 2), (0, 0));
    }

    #[test]
    fn interleave_is_valid_across_sizes() {
        for (d, v) in [(2u32, 2u32), (4, 2), (4, 3), (8, 2)] {
            for n in [d, 2 * d, 4 * d] {
                let s = generate_compute(d, n, v);
                validate(&s).unwrap_or_else(|e| panic!("D={d} N={n} v={v}: {e:?}"));
            }
        }
    }

    #[test]
    fn single_chunk_interleave_is_valid_and_memory_bounded() {
        // Megatron's interleaved scheduler keeps a 2x-longer warmup than
        // plain 1F1B even for v = 1 (its warmup formula is
        // (D-d-1)*2 + (v-1)*D), so the order is not identical to 1F1B —
        // but it must still be valid and its memory bounded by 2D.
        let w = generate_compute(4, 8, 1);
        validate(&w).unwrap_or_else(|e| panic!("{e:?}"));
        let peaks = w.peak_on_the_fly_per_device(true);
        assert!(peaks.iter().all(|&p| p <= 8), "peaks {peaks:?}");
    }

    #[test]
    fn memory_exceeds_1f1b_per_stage() {
        // Interleave trades memory for bubble: device 0's on-the-fly count
        // (in units of a *full* micro-batch across both its chunks) exceeds
        // the 1F1B bound D.
        let d = 4u32;
        let w = generate_compute(d, 8, 2);
        let peaks = w.peak_on_the_fly_per_device(true);
        assert!(
            peaks[0] > d as usize,
            "expected > {d} on-the-fly chunk-activations, got {}",
            peaks[0]
        );
    }

    #[test]
    #[should_panic(expected = "multiple of devices")]
    fn rejects_non_multiple_micros() {
        let _ = generate_compute(4, 6, 2);
    }
}
