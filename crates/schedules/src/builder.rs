//! Communication insertion: turns a compute-only schedule (just forwards and
//! backwards in per-device order) into a complete instruction list with the
//! auxiliary `SA`/`RA`/`SG`/`RG` instructions (paper §5.1: "we insert
//! additional auxiliary instructions into the instruction list to complete
//! the pipeline execution procedure"), plus the optional trailing
//! all-reduce and optimizer step.
//!
//! Placement rules (the paper's defaults, which the graph tuner then
//! rearranges):
//!
//! * `RA` immediately precedes the forward that consumes it;
//! * `SA` immediately follows the forward that produces it;
//! * `RG` immediately precedes the backward that consumes it;
//! * `SG` immediately follows the backward that produces it.
//!
//! Message tagging: every p2p pair is tagged with the `(micro, part)` of the
//! *producing* compute — the sending stage's part for activations, and the
//! downstream stage's part for gradients — so both ends of a channel agree
//! on the message identity.

use mario_ir::{DeviceId, Instr, MicroId, PartId, Schedule};

/// Options for [`insert_comm`].
#[derive(Debug, Clone, Copy)]
pub struct CommOptions {
    /// Append a gradient all-reduce to every device (for data parallelism).
    pub allreduce: bool,
    /// Append an optimizer step to every device.
    pub optimizer_step: bool,
}

impl Default for CommOptions {
    fn default() -> Self {
        Self {
            allreduce: false,
            optimizer_step: true,
        }
    }
}

/// Hop coordinates of `(device, part)` along the route of `micro`.
fn hop_index(schedule: &Schedule, micro: MicroId, device: DeviceId, part: PartId) -> usize {
    schedule
        .forward_path_of(micro)
        .iter()
        .position(|&(d, p)| d == device && p == part)
        .unwrap_or_else(|| panic!("({device}, {part}) not on route of {micro}"))
}

/// Inserts communication (and optional collective) instructions into a
/// compute-only schedule. Idempotence is not attempted: the input must not
/// already contain p2p instructions.
pub fn insert_comm(compute: &Schedule, opts: CommOptions) -> Schedule {
    for p in compute.programs() {
        assert_eq!(
            p.count(|i| i.kind.is_p2p()),
            0,
            "insert_comm expects a compute-only schedule"
        );
    }

    let mut out = compute.clone();
    for d in 0..out.devices() {
        let dev = DeviceId(d);
        let src = compute.program(dev);
        let mut instrs: Vec<Instr> = Vec::with_capacity(src.len() * 3);
        for &i in src.instrs() {
            match i.kind {
                mario_ir::InstrKind::Forward { .. } => {
                    let path = compute.forward_path_of(i.micro);
                    let hop = hop_index(compute, i.micro, dev, i.part);
                    if hop > 0 {
                        let (pd, pp) = path[hop - 1];
                        if pd != dev {
                            instrs.push(Instr::recv_act(i.micro, pp, pd));
                        }
                    }
                    instrs.push(i);
                    if let Some(&(nd, _)) = path.get(hop + 1) {
                        if nd != dev {
                            instrs.push(Instr::send_act(i.micro, i.part, nd));
                        }
                    }
                }
                mario_ir::InstrKind::Backward | mario_ir::InstrKind::BackwardInput => {
                    let path = compute.forward_path_of(i.micro);
                    let hop = hop_index(compute, i.micro, dev, i.part);
                    if let Some(&(nd, np)) = path.get(hop + 1) {
                        if nd != dev {
                            instrs.push(Instr::recv_grad(i.micro, np, nd));
                        }
                    }
                    instrs.push(i);
                    if hop > 0 {
                        let (pd, _) = path[hop - 1];
                        if pd != dev {
                            instrs.push(Instr::send_grad(i.micro, i.part, pd));
                        }
                    }
                }
                _ => instrs.push(i),
            }
        }
        if opts.allreduce {
            instrs.push(Instr::all_reduce());
        }
        if opts.optimizer_step {
            instrs.push(Instr::optimizer_step());
        }
        *out.program_mut(dev) = mario_ir::DeviceProgram::from_instrs(dev, instrs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{validate, SchemeKind, Topology};

    fn v_compute(devices: u32) -> Schedule {
        // A GPipe-ordered compute-only schedule: simple and obviously valid.
        let topo = Topology::new(SchemeKind::OneFOneB, devices);
        let mut s = Schedule::empty(topo, 2, vec![0, 0]);
        for d in 0..devices {
            let p = s.program_mut(DeviceId(d));
            for m in 0..2u32 {
                p.push(Instr::forward(m, 0u32));
            }
            for m in 0..2u32 {
                p.push(Instr::backward(m, 0u32));
            }
        }
        s
    }

    #[test]
    fn inserted_comm_validates_and_executes() {
        let s = insert_comm(&v_compute(3), CommOptions::default());
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn first_and_last_stage_have_one_sided_comm() {
        let s = insert_comm(&v_compute(3), CommOptions::default());
        let d0 = s.program(DeviceId(0));
        assert_eq!(d0.count(|i| i.kind.is_recv()), 2); // only RG
        assert_eq!(d0.count(|i| i.kind.is_send()), 2); // only SA
        let d2 = s.program(DeviceId(2));
        assert_eq!(d2.count(|i| i.kind.is_recv()), 2); // only RA
        assert_eq!(d2.count(|i| i.kind.is_send()), 2); // only SG
        let d1 = s.program(DeviceId(1));
        assert_eq!(d1.count(|i| i.kind.is_p2p()), 8); // RA+SA+RG+SG per micro
    }

    #[test]
    fn optimizer_step_is_appended_once_per_device() {
        let s = insert_comm(&v_compute(2), CommOptions::default());
        for p in s.programs() {
            assert_eq!(
                p.count(|i| i.kind == mario_ir::InstrKind::OptimizerStep),
                1
            );
            assert_eq!(
                p.instrs().last().unwrap().kind,
                mario_ir::InstrKind::OptimizerStep
            );
        }
    }

    #[test]
    fn allreduce_precedes_optimizer_step() {
        let s = insert_comm(
            &v_compute(2),
            CommOptions {
                allreduce: true,
                optimizer_step: true,
            },
        );
        for p in s.programs() {
            let n = p.len();
            assert_eq!(p.instrs()[n - 2].kind, mario_ir::InstrKind::AllReduce);
            assert_eq!(p.instrs()[n - 1].kind, mario_ir::InstrKind::OptimizerStep);
        }
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    #[should_panic(expected = "compute-only")]
    fn rejects_schedules_that_already_have_comm() {
        let s = insert_comm(&v_compute(2), CommOptions::default());
        let _ = insert_comm(&s, CommOptions::default());
    }
}
