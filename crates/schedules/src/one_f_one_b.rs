//! The 1F1B schedule ("V" shape; DAPPLE / PipeDream-flush): after a warmup
//! of `D-1-d` forwards, every device strictly alternates one forward with
//! one backward, bounding the on-the-fly micro-batches at device `d` to
//! `D-d` (Table 1: activation memory in `[M_θ, D × M_θ]`).

use mario_ir::{DeviceId, Instr, Schedule, SchemeKind, Topology};

/// Generates the compute-only 1F1B schedule for `devices` devices and
/// `micros` micro-batches.
pub fn generate_compute(devices: u32, micros: u32) -> Schedule {
    let topo = Topology::new(SchemeKind::OneFOneB, devices);
    let mut s = Schedule::empty(topo, micros, vec![0; micros as usize]);
    for d in 0..devices {
        let prog = s.program_mut(DeviceId(d));
        let warmup = (devices - 1 - d).min(micros);
        for m in 0..warmup {
            prog.push(Instr::forward(m, 0u32));
        }
        for j in 0..(micros - warmup) {
            prog.push(Instr::forward(warmup + j, 0u32));
            prog.push(Instr::backward(j, 0u32));
        }
        for k in (micros - warmup)..micros {
            prog.push(Instr::backward(k, 0u32));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{derive_schedule, unit_makespan, EnginePolicy};
    use mario_ir::validate;

    #[test]
    fn one_f_one_b_is_valid() {
        for d in 1..=6u32 {
            for n in 1..=8u32 {
                let s = generate_compute(d, n);
                validate(&s).unwrap_or_else(|e| panic!("D={d} N={n}: {e:?}"));
            }
        }
    }

    #[test]
    fn peak_memory_declines_with_device_index() {
        let s = generate_compute(4, 8);
        assert_eq!(s.peak_on_the_fly_per_device(true), vec![4, 3, 2, 1]);
    }

    #[test]
    fn last_device_strictly_alternates() {
        let s = generate_compute(4, 4);
        let last: Vec<String> = s
            .program(DeviceId(3))
            .instrs()
            .iter()
            .map(|i| i.to_string())
            .collect();
        assert_eq!(
            last,
            vec!["F0^0", "B0^0", "F1^0", "B1^0", "F2^0", "B2^0", "F3^0", "B3^0"]
        );
    }

    #[test]
    fn matches_engine_derivation_in_makespan() {
        for d in 2..=5u32 {
            let n = 2 * d;
            let formula = generate_compute(d, n);
            let topo = Topology::new(SchemeKind::OneFOneB, d);
            let derived = derive_schedule(
                topo,
                n,
                vec![0; n as usize],
                &EnginePolicy::one_f_one_b(d),
            );
            assert_eq!(
                unit_makespan(&formula),
                unit_makespan(&derived),
                "formula and engine disagree for D={d}"
            );
        }
    }

    #[test]
    fn classic_makespan_formula_holds() {
        // Ideal 1F1B: makespan = (D-1)(t_f + t_b) + N(t_f + t_b)
        // with t_f = 1, t_b = 2.
        for d in 1..=6u64 {
            for n in d..(3 * d) {
                let s = generate_compute(d as u32, n as u32);
                assert_eq!(
                    unit_makespan(&s),
                    (d - 1) * 3 + n * 3,
                    "D={d} N={n}"
                );
            }
        }
    }

    #[test]
    fn fewer_micros_than_devices_still_valid() {
        let s = generate_compute(6, 2);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
        assert_eq!(s.peak_on_the_fly_per_device(true), vec![2, 2, 2, 2, 2, 1]);
    }
}
