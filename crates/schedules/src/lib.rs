//! # mario-schedules — pipeline schedule generators
//!
//! From-scratch generators for the pipeline-parallel schemes the Mario
//! paper evaluates (§2.1 / §6): GPipe, 1F1B ("V"), Chimera ("X"),
//! Megatron-style Interleave ("W"), and a Hanayo-style wave pipeline. Each
//! generator emits per-device instruction lists in the [`mario_ir`] IR; the
//! [`builder`] then inserts point-to-point communication so the lists are
//! executable under blocking p2p semantics.
//!
//! The paper transcribes third-party schedules (Chimera's rank script,
//! Megatron's `schedules.py`) into its own instruction lists; here the "V"
//! and "W" orders follow the published closed forms, while "X" and the wave
//! scheme are derived with a dependency-driven list scheduler
//! ([`engine`]) under the scheme's injection policy.

#![warn(missing_docs)]

pub mod builder;
pub mod chimera;
pub mod engine;
pub mod forward_only;
pub mod gpipe;
pub mod interleave;
pub mod one_f_one_b;
pub mod scheme;
pub mod wave;
pub mod zero_bubble;

pub use builder::{insert_comm, CommOptions};
pub use engine::{derive_schedule, unit_makespan, EnginePolicy};
pub use scheme::{generate, generate_compute, ScheduleConfig};
