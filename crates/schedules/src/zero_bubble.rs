//! Zero-bubble schedule generators (ZB-H1 and ZB-V).
//!
//! "Zero Bubble Pipeline Parallelism" (Qi et al., ICLR '24) splits every
//! backward into its input-gradient half `Bi` — the only part downstream
//! stages wait on — and its weight-gradient half `Bw`, which nothing but the
//! optimizer step depends on. Scheduling `Bi` on the critical path and
//! dropping `Bw` into the warmup/cooldown and recv-gap bubbles removes most
//! of 1F1B's trailing bubble: on the unit grid the cooldown shrinks from
//! `2(p-1)` backward slots to `(p-1)` input-grad slots plus the deferred
//! weight work, giving makespan `3m + 2(p-1)` versus 1F1B's `3m + 3(p-1)`.
//!
//! Like Chimera's bidirectional merge, the ZB orders are easier to *derive*
//! than to transcribe: this module runs a greedy dependency-driven list
//! scheduler (the three-phase sibling of [`crate::engine`]) and emits the
//! firing order directly. Readiness rules on the unit grid (`F`=1, `Bi`=1,
//! `Bw`=1 — the halves of the classic `B`=2):
//!
//! * `F(m, hop0)` is ready at t=0, gated by the device's in-flight limit;
//! * `F(m, h)` is ready when `F(m, h-1)` finished;
//! * `Bi(m, last)` is ready when `F(m, last)` finished;
//! * `Bi(m, h)` is ready when `F(m, h)` and `Bi(m, h+1)` finished;
//! * `Bw(m, h)` is ready when `Bi(m, h)` finished (same device, any time).
//!
//! Ties prefer `Bi` over `F` over `Bw`: input grads drive the pipeline,
//! fresh forwards keep it fed, and weight grads soak up whatever bubble is
//! left. The in-flight slot taken by a micro's first arrival on a device is
//! released only at that hop's `Bw` — the weight GEMM still reads the
//! activation, so this is what bounds live memory to the 1F1B level (ZB-H1's
//! defining trade: releasing at `Bi` would be faster still, but the last
//! device would hold every activation at once).

use crate::engine::EnginePolicy;
use mario_ir::{DeviceId, Instr, PartId, Schedule, SchemeKind, Topology};
use std::collections::HashMap;

/// The three compute phases of one (micro, hop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Phase {
    /// Input-gradient backward half: the critical path.
    Bi,
    /// Forward.
    F,
    /// Weight-gradient backward half: bubble filler.
    Bw,
}

/// One schedulable unit of compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    micro: u32,
    hop: u32,
    phase: Phase,
}

/// ZB-H1 compute order: the 1F1B chain with split backwards.
pub fn generate_compute(devices: u32, micros: u32) -> Schedule {
    let topo = Topology::new(SchemeKind::ZeroBubbleH1, devices);
    derive_zb_schedule(
        topo,
        micros,
        vec![0; micros as usize],
        &EnginePolicy::one_f_one_b(devices),
    )
}

/// ZB-V compute order: two chunks per device in a V, split backwards.
pub fn generate_compute_v(devices: u32, micros: u32) -> Schedule {
    let topo = Topology::new(SchemeKind::ZeroBubbleV, devices);
    derive_zb_schedule(
        topo,
        micros,
        vec![0; micros as usize],
        &EnginePolicy::wave(devices),
    )
}

/// Greedy three-phase list scheduling over the virtual-pipeline dependency
/// graph — the split-backward sibling of [`crate::engine::derive_schedule`].
fn derive_zb_schedule(
    topology: Topology,
    micros: u32,
    routes: Vec<u32>,
    policy: &EnginePolicy,
) -> Schedule {
    const FW_T: u64 = 1;
    const BI_T: u64 = 1;
    const BW_T: u64 = 1;

    let paths: Vec<Vec<(DeviceId, PartId)>> = (0..topology.num_routes())
        .map(|r| topology.forward_path(r))
        .collect();
    let devices = topology.devices as usize;

    let mut finish: HashMap<Item, u64> = HashMap::new();
    let mut remaining: HashMap<Item, u32> = HashMap::new();
    let mut ready_time: HashMap<Item, u64> = HashMap::new();
    let mut ready: Vec<Vec<Item>> = vec![Vec::new(); devices];
    let mut gated: Vec<Vec<Item>> = vec![Vec::new(); devices];
    let mut in_flight: Vec<Vec<u32>> = vec![vec![0; topology.num_routes() as usize]; devices];
    let mut clocks: Vec<u64> = vec![0; devices];
    let mut order: Vec<Vec<Instr>> = vec![Vec::new(); devices];

    let hop_of = |m: u32, hop: u32| -> (DeviceId, PartId) {
        paths[routes[m as usize] as usize][hop as usize]
    };
    let path_len = |m: u32| -> u32 { paths[routes[m as usize] as usize].len() as u32 };

    // In-flight gating applies at a micro's first arrival on a device; the
    // matching release happens at that hop's `Bw` (the last compute the
    // device runs for the micro — the weight GEMM reads the activation).
    let first_hop_on_dev: Vec<Vec<Option<u32>>> = paths
        .iter()
        .map(|path| {
            let mut firsts = vec![None; devices];
            for (hop, &(d, _)) in path.iter().enumerate() {
                if firsts[d.index()].is_none() {
                    firsts[d.index()] = Some(hop as u32);
                }
            }
            firsts
        })
        .collect();

    // Seed dependency counters.
    for m in 0..micros {
        let len = path_len(m);
        for hop in 0..len {
            let f = Item { micro: m, hop, phase: Phase::F };
            let bi = Item { micro: m, hop, phase: Phase::Bi };
            let bw = Item { micro: m, hop, phase: Phase::Bw };
            remaining.insert(f, if hop == 0 { 0 } else { 1 });
            remaining.insert(bi, if hop + 1 == len { 1 } else { 2 });
            remaining.insert(bw, 1);
        }
        let inj = Item { micro: m, hop: 0, phase: Phase::F };
        ready_time.insert(inj, 0);
        let (d, _) = hop_of(m, 0);
        ready[d.index()].push(inj);
    }

    let total_items: usize = (0..micros).map(|m| 3 * path_len(m) as usize).sum();
    let mut done = 0usize;

    // (start time, phase, micro, hop): Phase orders Bi < F < Bw, so ties
    // prefer input grads, then forwards, then weight grads.
    type FireKey = (u64, Phase, u32, u32);

    while done < total_items {
        let mut best: Option<(usize, usize, FireKey)> = None;
        for d in 0..devices {
            for (idx, &it) in ready[d].iter().enumerate() {
                let start = clocks[d].max(ready_time[&it]);
                let key = (start, it.phase, it.micro, it.hop);
                if best.is_none_or(|(_, _, bk)| key < bk) {
                    best = Some((d, idx, key));
                }
            }
        }
        let (d, idx, (start, ..)) = best.expect("zb scheduler stalled: dependency cycle");
        let it = ready[d].swap_remove(idx);
        let (dev, part) = hop_of(it.micro, it.hop);
        debug_assert_eq!(dev.index(), d);

        let route = routes[it.micro as usize] as usize;
        let is_first_arrival = first_hop_on_dev[route][d] == Some(it.hop);
        if it.phase == Phase::F && is_first_arrival {
            if in_flight[d][route] >= policy.limits[d][route] {
                gated[d].push(it);
                continue;
            }
            in_flight[d][route] += 1;
        }

        let dur = match it.phase {
            Phase::F => FW_T,
            Phase::Bi => BI_T,
            Phase::Bw => BW_T,
        };
        let end = start + dur;
        clocks[d] = end;
        finish.insert(it, end);
        done += 1;
        order[d].push(match it.phase {
            Phase::F => Instr::forward(it.micro, part.0),
            Phase::Bi => Instr::backward_input(it.micro, part.0),
            Phase::Bw => Instr::backward_weight(it.micro, part.0),
        });

        // Wake dependents.
        let len = path_len(it.micro);
        let mut wake = |target: Item, t: u64| {
            let rem = remaining.get_mut(&target).expect("dependent exists");
            *rem -= 1;
            let rt = ready_time.entry(target).or_insert(0);
            *rt = (*rt).max(t);
            if *rem == 0 {
                let (td, _) =
                    paths[routes[target.micro as usize] as usize][target.hop as usize];
                ready[td.index()].push(target);
            }
        };
        match it.phase {
            Phase::F => {
                if it.hop + 1 < len {
                    wake(Item { micro: it.micro, hop: it.hop + 1, phase: Phase::F }, end);
                }
                wake(Item { micro: it.micro, hop: it.hop, phase: Phase::Bi }, end);
            }
            Phase::Bi => {
                if it.hop > 0 {
                    wake(Item { micro: it.micro, hop: it.hop - 1, phase: Phase::Bi }, end);
                }
                wake(Item { micro: it.micro, hop: it.hop, phase: Phase::Bw }, end);
            }
            Phase::Bw => {
                // The weight half frees the activation: release the in-flight
                // slot taken by the micro's first arrival on this device.
                if !is_first_arrival {
                    continue;
                }
                in_flight[d][route] -= 1;
                if let Some(pos) = gated[d]
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| routes[g.micro as usize] as usize == route)
                    .min_by_key(|(_, g)| g.micro)
                    .map(|(i, _)| i)
                {
                    let g = gated[d].swap_remove(pos);
                    ready[d].push(g);
                }
            }
        }
    }

    let programs = order
        .into_iter()
        .enumerate()
        .map(|(d, instrs)| mario_ir::DeviceProgram::from_instrs(DeviceId(d as u32), instrs))
        .collect();
    Schedule::from_programs(topology, micros, routes, programs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unit_makespan;
    use mario_ir::{validate, InstrTag};

    #[test]
    fn zb_h1_is_valid_and_fully_split() {
        for (d, n) in [(2u32, 4u32), (3, 6), (4, 8), (8, 16)] {
            let s = generate_compute(d, n);
            validate(&s).unwrap_or_else(|e| panic!("D={d} N={n}: {e:?}"));
            assert_eq!(s.count_tag(InstrTag::Backward), 0);
            assert_eq!(
                s.count_tag(InstrTag::BackwardInput),
                s.expected_forward_count()
            );
            assert_eq!(
                s.count_tag(InstrTag::BackwardWeight),
                s.expected_forward_count()
            );
        }
    }

    #[test]
    fn zb_v_is_valid_and_fully_split() {
        for (d, n) in [(2u32, 4u32), (4, 8), (6, 12)] {
            let s = generate_compute_v(d, n);
            validate(&s).unwrap_or_else(|e| panic!("D={d} N={n}: {e:?}"));
            assert_eq!(s.count_tag(InstrTag::Backward), 0);
            assert_eq!(
                s.count_tag(InstrTag::BackwardInput),
                s.expected_forward_count()
            );
            assert_eq!(
                s.count_tag(InstrTag::BackwardWeight),
                s.expected_forward_count()
            );
        }
    }

    #[test]
    fn zb_h1_makespan_closed_form() {
        // Cooldown shrinks from 2(p-1) backward slots to (p-1) input-grad
        // slots: makespan 3m + 2(p-1) on the unit grid, for m >= p.
        for (d, n) in [(2u32, 4u32), (3, 6), (4, 8), (4, 12), (8, 16)] {
            let s = generate_compute(d, n);
            assert_eq!(
                unit_makespan(&s),
                3 * n as u64 + 2 * (d as u64 - 1),
                "D={d} N={n}"
            );
        }
    }

    #[test]
    fn zb_h1_strictly_beats_1f1b_makespan() {
        for (d, n) in [(2u32, 4u32), (3, 6), (4, 8), (8, 16)] {
            let zb = generate_compute(d, n);
            let v = crate::one_f_one_b::generate_compute(d, n);
            assert!(
                unit_makespan(&zb) < unit_makespan(&v),
                "D={d} N={n}: zb {} !< 1f1b {}",
                unit_makespan(&zb),
                unit_makespan(&v)
            );
        }
    }

    #[test]
    fn zb_h1_memory_stays_at_the_1f1b_level() {
        // Releasing at Bw keeps device d at <= D - d live micro-batches —
        // the 1F1B profile, ZB-H1's defining memory bound.
        let d = 4u32;
        let s = generate_compute(d, 8);
        let peaks = s.peak_on_the_fly_per_device(true);
        assert_eq!(peaks, vec![4, 3, 2, 1]);
    }
}
