//! Unified entry point: pick a scheme, get a complete schedule.

use crate::builder::{insert_comm, CommOptions};
use mario_ir::{Schedule, SchemeKind};
use serde::{Deserialize, Serialize};

/// Everything needed to materialize one scheme's schedule.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Which scheme to generate.
    pub scheme: SchemeKind,
    /// Pipeline device count `D`.
    pub devices: u32,
    /// Micro-batches per iteration `N`.
    pub micros: u32,
    /// Emit p2p communication instructions.
    pub with_comm: bool,
    /// Emit a trailing data-parallel all-reduce.
    pub with_allreduce: bool,
}

impl ScheduleConfig {
    /// A complete schedule (comm + optimizer step) for `scheme`.
    pub fn new(scheme: SchemeKind, devices: u32, micros: u32) -> Self {
        Self {
            scheme,
            devices,
            micros,
            with_comm: true,
            with_allreduce: false,
        }
    }

    /// Builder: toggle communication emission.
    pub fn comm(mut self, on: bool) -> Self {
        self.with_comm = on;
        self
    }

    /// Builder: toggle the all-reduce.
    pub fn allreduce(mut self, on: bool) -> Self {
        self.with_allreduce = on;
        self
    }
}

/// Generates the compute-only schedule for a scheme.
pub fn generate_compute(scheme: SchemeKind, devices: u32, micros: u32) -> Schedule {
    match scheme {
        SchemeKind::GPipe => crate::gpipe::generate_compute(devices, micros),
        SchemeKind::OneFOneB => crate::one_f_one_b::generate_compute(devices, micros),
        SchemeKind::Chimera => crate::chimera::generate_compute(devices, micros),
        SchemeKind::Interleave { chunks } => {
            crate::interleave::generate_compute(devices, micros, chunks)
        }
        SchemeKind::Wave { chunks } => crate::wave::generate_compute(devices, micros, chunks),
        SchemeKind::ForwardOnly => crate::forward_only::generate_compute(devices, micros),
        SchemeKind::ZeroBubbleH1 => crate::zero_bubble::generate_compute(devices, micros),
        SchemeKind::ZeroBubbleV => crate::zero_bubble::generate_compute_v(devices, micros),
    }
}

/// Generates a schedule according to `cfg`.
pub fn generate(cfg: ScheduleConfig) -> Schedule {
    let compute = generate_compute(cfg.scheme, cfg.devices, cfg.micros);
    if cfg.with_comm {
        // Inference pipelines run no optimizer step (and never all-reduce:
        // there are no gradients to average).
        let forward_only = matches!(cfg.scheme, SchemeKind::ForwardOnly);
        insert_comm(
            &compute,
            CommOptions {
                allreduce: cfg.with_allreduce && !forward_only,
                optimizer_step: !forward_only,
            },
        )
    } else {
        compute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{validate, validate_with, ValidateOptions};

    fn all_schemes(devices: u32) -> Vec<SchemeKind> {
        vec![
            SchemeKind::GPipe,
            SchemeKind::OneFOneB,
            SchemeKind::Chimera,
            SchemeKind::Interleave { chunks: 2 },
            SchemeKind::Wave { chunks: 2 },
            SchemeKind::ForwardOnly,
            SchemeKind::ZeroBubbleH1,
            SchemeKind::ZeroBubbleV,
        ]
        .into_iter()
        .filter(|s| !matches!(s, SchemeKind::Chimera) || devices.is_multiple_of(2))
        .collect()
    }

    #[test]
    fn every_scheme_generates_valid_full_schedules() {
        for d in [2u32, 4, 8] {
            for s in all_schemes(d) {
                let n = 2 * d;
                let sched = generate(ScheduleConfig::new(s, d, n));
                let opts = ValidateOptions {
                    channel_capacity: 2,
                    ..Default::default()
                };
                validate_with(&sched, opts).unwrap_or_else(|e| {
                    panic!("{s:?} D={d} N={n}: {}", e[0])
                });
            }
        }
    }

    #[test]
    fn compute_only_generation_skips_comm() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8).comm(false));
        assert_eq!(s.count_tag(mario_ir::InstrTag::SendAct), 0);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn forward_only_emits_no_backward_pass_artifacts() {
        let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, 4, 8).allreduce(true));
        assert_eq!(s.count_tag(mario_ir::InstrTag::Backward), 0);
        assert_eq!(s.count_tag(mario_ir::InstrTag::SendGrad), 0);
        assert_eq!(s.count_tag(mario_ir::InstrTag::RecvGrad), 0);
        assert_eq!(s.count_tag(mario_ir::InstrTag::AllReduce), 0);
        assert_eq!(s.count_tag(mario_ir::InstrTag::OptimizerStep), 0);
        // Stage 0 receives nothing; the last stage sends nothing.
        assert_eq!(
            s.program(mario_ir::DeviceId(0))
                .count(|i| matches!(i.kind, mario_ir::InstrKind::RecvAct { .. })),
            0
        );
        assert_eq!(
            s.program(mario_ir::DeviceId(3))
                .count(|i| matches!(i.kind, mario_ir::InstrKind::SendAct { .. })),
            0
        );
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn allreduce_flag_adds_one_per_device() {
        let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8).allreduce(true));
        assert_eq!(s.count_tag(mario_ir::InstrTag::AllReduce), 4);
    }
}
