//! The Chimera schedule ("X" shape; Li & Hoefler, SC'21): two pipelines run
//! simultaneously in opposite directions — the *down* pipeline (part 0)
//! places stage `s` on device `s`, the *up* pipeline (part 1) mirrors it —
//! so each direction's bubbles are filled by the other direction's compute.
//! Each direction carries half the micro-batches and each device holds one
//! weight replica per direction (Table 1: `2 × M_w`).
//!
//! The per-device instruction order is *derived* with the dependency-driven
//! list scheduler ([`crate::engine`]) under the Chimera injection policy
//! (each head device keeps at most `D/2` of its direction's micro-batches
//! in flight), which reproduces the bidirectional 1F1B shape for any even
//! `D` and any even `N` without transcribing per-size tables.

use crate::engine::{derive_schedule, EnginePolicy};
use mario_ir::{Schedule, SchemeKind, Topology};

/// Route assignment: even micro-batches take the down pipeline, odd ones
/// the up pipeline.
pub fn routes(micros: u32) -> Vec<u32> {
    (0..micros).map(|m| m % 2).collect()
}

/// Generates the compute-only Chimera schedule.
///
/// # Panics
/// If `devices` is odd or `micros` is odd (each direction needs an equal
/// share).
pub fn generate_compute(devices: u32, micros: u32) -> Schedule {
    assert!(devices.is_multiple_of(2), "Chimera requires even device count");
    assert!(micros.is_multiple_of(2), "Chimera requires even micro-batch count");
    let topo = Topology::new(SchemeKind::Chimera, devices);
    derive_schedule(topo, micros, routes(micros), &EnginePolicy::chimera(devices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::unit_makespan;
    use mario_ir::{validate, DeviceId, MicroId, PartId};

    #[test]
    fn chimera_is_valid_across_sizes() {
        for d in [2u32, 4, 6, 8] {
            for n in [d, 2 * d] {
                let s = generate_compute(d, n);
                validate(&s).unwrap_or_else(|e| panic!("D={d} N={n}: {e:?}"));
            }
        }
    }

    #[test]
    fn both_directions_present_on_every_device() {
        let s = generate_compute(4, 8);
        for d in 0..4u32 {
            let p = s.program(DeviceId(d));
            assert!(p.count(|i| i.part == PartId(0) && i.kind.is_compute()) > 0);
            assert!(p.count(|i| i.part == PartId(1) && i.kind.is_compute()) > 0);
        }
    }

    #[test]
    fn down_micros_start_on_device_zero_up_on_last() {
        let s = generate_compute(4, 4);
        // Micro 0 (down): forward on device 0 comes before device 3.
        assert!(s.program(DeviceId(0)).forward_pos(MicroId(0), PartId(0)).is_some());
        // Micro 1 (up): forward happens on part 1, starting at device 3.
        assert!(s.program(DeviceId(3)).forward_pos(MicroId(1), PartId(1)).is_some());
        assert!(s.program(DeviceId(0)).forward_pos(MicroId(1), PartId(1)).is_some());
    }

    #[test]
    fn bidirectional_overlap_beats_unidirectional_bubble() {
        // Chimera's whole point: for N = D the makespan beats 1F1B's.
        let d = 8u32;
        let n = d;
        let x = unit_makespan(&generate_compute(d, n));
        let v = unit_makespan(&crate::one_f_one_b::generate_compute(d, n));
        assert!(
            x < v,
            "Chimera ({x}) should beat 1F1B ({v}) at N = D = {d}"
        );
    }

    #[test]
    fn peak_memory_within_table1_bounds() {
        let d = 8u32;
        let s = generate_compute(d, d);
        for (dev, &peak) in s.peak_on_the_fly_per_device(true).iter().enumerate() {
            assert!(
                peak as u32 <= d,
                "device {dev}: {peak} exceeds Table 1 upper bound D={d}"
            );
            assert!(peak as u32 >= d / 2, "device {dev}: {peak} below D/2");
        }
    }

    #[test]
    #[should_panic(expected = "even micro-batch")]
    fn rejects_odd_micros() {
        let _ = generate_compute(4, 5);
    }
}
