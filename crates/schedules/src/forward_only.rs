//! Fill-drain forward-only schedule (torchgpipe-style inference): every
//! micro-batch flows through the chain once and is done. No backward pass,
//! no optimizer step; stage 0 receives nothing, the last stage sends
//! nothing. With `p` devices and `m` micro-batches the bubble fraction is
//! the classic `(p-1)/(m+p-1)` — each device is idle exactly during the
//! fill and drain ramps.

use mario_ir::{DeviceId, Instr, Schedule, SchemeKind, Topology};

/// Generates the compute-only fill-drain schedule for `devices` devices
/// and `micros` micro-batches (requests flow in micro-id order).
pub fn generate_compute(devices: u32, micros: u32) -> Schedule {
    let topo = Topology::new(SchemeKind::ForwardOnly, devices);
    let mut s = Schedule::empty(topo, micros, vec![0; micros as usize]);
    for d in 0..devices {
        let prog = s.program_mut(DeviceId(d));
        for m in 0..micros {
            prog.push(Instr::forward(m, 0u32));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::validate;

    #[test]
    fn forward_only_is_valid() {
        let s = generate_compute(4, 8);
        validate(&s).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn instruction_counts() {
        let s = generate_compute(3, 5);
        assert_eq!(s.total_instrs(), 3 * 5);
    }
}
