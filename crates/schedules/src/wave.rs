//! A Hanayo-style wave pipeline (Liu et al., SC'23): micro-batches traverse
//! the devices in alternating directions across `chunks` waves, so wave
//! boundaries stay on-device (no communication at the turn) and the bubble
//! shrinks like Chimera's without duplicating weights.
//!
//! Hanayo's action lists are not open source (paper §3.2), so — like the
//! paper, which re-expresses schemes in its own instruction lists — we
//! derive the order with the dependency-driven list scheduler under a
//! wave-friendly in-flight policy.

use crate::engine::{derive_schedule, EnginePolicy};
use mario_ir::{Schedule, SchemeKind, Topology};

/// Generates the compute-only wave schedule with `chunks` waves.
///
/// # Panics
/// If `chunks == 0`.
pub fn generate_compute(devices: u32, micros: u32, chunks: u32) -> Schedule {
    assert!(chunks > 0, "wave pipeline needs at least one wave");
    let topo = Topology::new(SchemeKind::Wave { chunks }, devices);
    derive_schedule(
        topo,
        micros,
        vec![0; micros as usize],
        &EnginePolicy::wave(devices),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mario_ir::{validate, DeviceId, MicroId, PartId};

    #[test]
    fn wave_is_valid_across_sizes() {
        for d in [2u32, 4, 8] {
            for n in [4u32, 8] {
                for c in [1u32, 2] {
                    let s = generate_compute(d, n, c);
                    validate(&s).unwrap_or_else(|e| panic!("D={d} N={n} c={c}: {e:?}"));
                }
            }
        }
    }

    #[test]
    fn wave_turns_stay_on_device() {
        // With 2 waves on 4 devices, stage 3 -> stage 4 both live on d3, so
        // no SA/RA crosses that boundary once comm is inserted.
        let s = generate_compute(4, 4, 2);
        let full = crate::builder::insert_comm(&s, crate::builder::CommOptions::default());
        let d3 = full.program(DeviceId(3));
        // d3 receives activations for its chunk-0 stage only (the chunk-1
        // input is produced locally).
        let recvs = d3.count(|i| {
            matches!(i.kind, mario_ir::InstrKind::RecvAct { .. }) && i.micro == MicroId(0)
        });
        assert_eq!(recvs, 1);
        validate(&full).unwrap_or_else(|e| panic!("{e:?}"));
    }

    #[test]
    fn every_micro_crosses_every_wave() {
        let s = generate_compute(4, 4, 2);
        for m in 0..4u32 {
            for d in 0..4u32 {
                for c in 0..2u32 {
                    assert!(
                        s.program(DeviceId(d))
                            .forward_pos(MicroId(m), PartId(c))
                            .is_some(),
                        "missing F{m}^{c} on d{d}"
                    );
                }
            }
        }
    }
}
