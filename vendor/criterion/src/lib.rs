//! Offline stand-in for `criterion`, covering the subset the workspace
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`throughput`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, and `Bencher::iter`.
//!
//! Instead of criterion's statistical pipeline it reports the median of a
//! handful of timed batches to stdout — enough to eyeball the magnitudes
//! EXPERIMENTS.md records, with no plotting/serde/clap dependency tree.
//! See `vendor/README.md`.

use std::fmt::Display;
use std::time::Instant;

/// Re-export of `std::hint::black_box`, matching `criterion::black_box`.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Workload descriptor attached to a group (informational in the stub).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _c: &'a mut Criterion,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    median_ns: u128,
}

impl Bencher {
    /// Times `f`, storing the median of `samples` batches.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warm-up to populate caches / lazy statics.
        black_box(f());
        let mut durations = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            durations.push(start.elapsed());
        }
        durations.sort();
        self.median_ns = durations[durations.len() / 2].as_nanos();
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _c: self,
        }
    }
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Records the group's workload size (shown alongside timings).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b))
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, |b| f(b, input))
    }

    /// Ends the group (boundary marker in the output).
    pub fn finish(&mut self) {
        println!("{:<60} group done", self.name);
    }

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            median_ns: 0,
        };
        f(&mut b);
        let extra = match self.throughput {
            Some(Throughput::Elements(n)) if b.median_ns > 0 => {
                let per_sec = n as f64 / (b.median_ns as f64 / 1e9);
                format!("  ({per_sec:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) if b.median_ns > 0 => {
                let per_sec = n as f64 / (b.median_ns as f64 / 1e9);
                format!("  ({per_sec:.0} B/s)")
            }
            _ => String::new(),
        };
        println!(
            "{:<60} median {}{}",
            format!("{}/{}", self.name, id),
            human_time(b.median_ns),
            extra
        );
        self
    }
}

fn human_time(ns: u128) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.2} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.2} s", ns as f64 / 1e9),
    }
}

/// Groups benchmark functions into one callable (`fn ()`), as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("sum", "n=100"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_each_closure() {
        benches();
    }

    #[test]
    fn durations_render_in_sensible_units() {
        assert_eq!(human_time(12), "12 ns");
        assert_eq!(human_time(1_500), "1.50 µs");
        assert_eq!(human_time(Duration::from_millis(2).as_nanos()), "2.00 ms");
    }
}
