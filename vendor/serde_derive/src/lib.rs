//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` stub blanket-implements its marker traits for all
//! types, so these derives have nothing to generate — they exist so
//! `#[derive(Serialize, Deserialize)]` resolves and, crucially, so the
//! `#[serde(...)]` helper attribute (e.g. `#[serde(default)]`) is
//! registered and accepted by the compiler. See `vendor/README.md`.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; registers the `#[serde(...)]` helper attribute.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; registers the `#[serde(...)]` helper attribute.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
