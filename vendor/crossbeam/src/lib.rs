//! Offline stand-in for `crossbeam`, providing the bounded-channel subset
//! the cluster emulator's virtual-time links are built on.
//!
//! Semantics matched to the real crate where the emulator depends on them:
//! `bounded(n)` blocks senders when `n` messages are buffered, receivers
//! observe disconnection once every `Sender` is dropped *and* the buffer
//! has drained, and `recv_timeout` distinguishes `Timeout` from
//! `Disconnected`. Backed by `std::sync::{Mutex, Condvar}`.
//! See `vendor/README.md`.

pub mod channel {
    //! Multi-producer multi-consumer bounded channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        buf: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a bounded channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected and the buffer is drained.
        Disconnected,
    }

    /// Creates a channel buffering at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                buf: VecDeque::new(),
                // A zero-capacity rendezvous is not needed by this
                // workspace; round it up so sends always have a slot.
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while the buffer is full. Fails only when
        /// every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if s.receivers == 0 {
                    return Err(SendError(msg));
                }
                if s.buf.len() < s.cap {
                    s.buf.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                s = self
                    .0
                    .not_full
                    .wait(s)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, waiting up to `timeout` for one to arrive.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = s.buf.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(msg);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .0
                    .not_empty
                    .wait_timeout(s, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                s = guard;
            }
        }

        /// Receives a message if one is already buffered.
        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            match s.buf.pop_front() {
                Some(msg) => {
                    self.0.not_full.notify_one();
                    Ok(msg)
                }
                None if s.senders == 0 => Err(RecvTimeoutError::Disconnected),
                None => Err(RecvTimeoutError::Timeout),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            s.senders += 1;
            drop(s);
            Self(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            s.receivers += 1;
            drop(s);
            Self(self.0.clone())
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            s.senders -= 1;
            if s.senders == 0 {
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
            s.receivers -= 1;
            if s.receivers == 0 {
                self.0.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_blocks_at_capacity_until_recv() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || tx.send(3).unwrap());
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(1));
            t.join().unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(2));
            assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(3));
        }

        #[test]
        fn disconnection_is_observed_after_drain() {
            let (tx, rx) = bounded(4);
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn timeout_fires_when_no_sender_sends() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
        }
    }
}
