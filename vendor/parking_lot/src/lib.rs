//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the subset this workspace uses is provided: a `Mutex` whose
//! `lock()` returns the guard directly (no poison `Result`). Poisoning is
//! recovered transparently — the emulator's watchdog, not lock poisoning,
//! is the deadlock/panic containment mechanism here. See `vendor/README.md`.

use std::fmt;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}
