//! Offline stand-in for `rand` 0.8, covering the seeded-deterministic
//! subset this workspace uses: `StdRng::seed_from_u64`, `gen_range` over
//! integer/float ranges, and `gen_bool`.
//!
//! The generator is SplitMix64 — not the real `StdRng` (ChaCha12), so the
//! *stream* differs from upstream `rand`, but every property the workspace
//! relies on holds: identical seeds yield identical sequences across runs,
//! platforms, and thread interleavings. Nothing in the repo asserts
//! specific draws, only reproducibility. See `vendor/README.md`.

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Named RNGs.
pub mod rngs {
    /// The standard generator (stub: SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self { state }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): full-period, passes BigCrush
            // for this use, and trivially reproducible from a bare u64 seed.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// A range a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// High-level draw methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn draws_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&w));
            let u = r.gen_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(9);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
