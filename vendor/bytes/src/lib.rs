//! Offline stand-in for the `bytes` crate.
//!
//! This workspace never constructs a `Bytes` value — transfers are modelled
//! by byte *counts*, not buffers — so the stub only has to exist for the
//! dependency edge to resolve without network access. See `vendor/README.md`.

/// A cheaply cloneable contiguous byte buffer (stub: a plain `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    pub const fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates a buffer from a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}
