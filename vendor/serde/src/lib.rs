//! Offline stand-in for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` widely to keep its
//! types wire-ready, but never actually serializes through serde — the
//! bench JSON is hand-rolled (`mario-bench::summary`) and the schedule
//! text format has its own parser (`mario-ir::text`). The stub therefore
//! reduces the traits to markers, blanket-implemented for every type, and
//! re-exports no-op derives that accept `#[serde(...)]` attributes.
//! Swapping the real crates back in requires no source changes.
//! See `vendor/README.md`.

/// Marker for types that can be serialized.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that can be deserialized from borrowed data with
/// lifetime `'de`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker for types deserializable from any lifetime (owned data).
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
