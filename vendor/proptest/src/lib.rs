//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the `proptest!` macro with `#![proptest_config]`,
//! range/tuple/`Just` strategies, `prop_map`, `prop_oneof!`,
//! `prop::collection::vec`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, deliberate for an offline build:
//! - Sampling is plain seeded random search — there is no shrinking and no
//!   `proptest-regressions` persistence. A failure panics with the case
//!   number and the macro-generated message; the run is reproducible
//!   because every test's RNG is seeded from its own name.
//! - Test bodies are `Result<(), String>`, so `return Err(format!(..))`
//!   rejects a case explicitly, exactly as the workspace's tests do.
//!
//! See `vendor/README.md` for the swap-back-to-upstream story.

pub mod test_runner {
    //! Runner configuration.

    /// Controls how many random cases each property test executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies (sampling only; no shrinking).

    use std::rc::Rc;

    /// Deterministic per-test RNG (SplitMix64), seeded from the test name
    /// so every `cargo test` run explores the identical case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (FNV-1a).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies producing
        /// the same value type can be stored together (e.g. `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.sample(rng)))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Type-erased strategy; cheap to clone.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Builds a union over `arms`; each draw picks one arm uniformly.
        ///
        /// # Panics
        /// If `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self(arms)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let arm = rng.below(self.0.len() as u64) as usize;
            self.0[arm].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($v,)+) = self;
                    ($($v.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A/a);
    tuple_strategy!(A/a, B/b);
    tuple_strategy!(A/a, B/b, C/c);
    tuple_strategy!(A/a, B/b, C/c, D/d);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e);
    tuple_strategy!(A/a, B/b, C/c, D/d, E/e, F/f);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `len` and elements
    /// from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `fn name()` that samples its arguments for `cases` rounds.
/// Attributes (`#[test]`, docs) pass through unchanged.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng = $crate::strategy::TestRng::from_name(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __msg
                    );
                }
            }
        }
    )*};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "{}\n  left: {:?}\n right: {:?}", format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u32, u32)> {
        prop_oneof![
            (1u32..=4, 1u32..=4).prop_map(|(a, b)| (a, 2 * b)),
            Just((7, 7)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_maps_stay_in_bounds((a, b) in pair(), s in 0u64..100) {
            prop_assert!(a >= 1 && a <= 7, "a={}", a);
            prop_assert!(b <= 8 || b == 7);
            prop_assert!(s < 100);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, a + 1);
        }

        #[test]
        fn vec_strategy_respects_length(
            v in prop::collection::vec(0u32..10, 2..6),
        ) {
            prop_assume!(!v.is_empty());
            prop_assert!(v.len() >= 2 && v.len() < 6, "len={}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = crate::strategy::TestRng::from_name("x");
        let mut b = crate::strategy::TestRng::from_name("x");
        let s = pair();
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
