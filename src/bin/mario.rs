//! `mario` — command-line front end for the pipeline optimizer.
//!
//! ```text
//! mario generate --scheme V --devices 4 --micros 8 [--mario] [--out s.txt]
//! mario optimize --model gpt3-1.6b --devices 8 --gbs 128 [--mem-gb 40] [--out s.txt]
//! mario simulate --schedule s.txt --model gpt3-1.6b --mbs 2 [--viz] [--trace t.json]
//! mario emulate  --schedule s.txt --model gpt3-1.6b --mbs 2 [--jitter 0.02] [--backend event]
//! ```
//!
//! Schedules travel in the `mario-schedule v1` text format
//! (`mario_ir::text`), so the output of `generate`/`optimize` feeds
//! straight into `simulate`/`emulate` — the AOT workflow of the paper's
//! Listing 1.

use mario::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "\
mario — near zero-cost activation checkpointing in pipeline parallelism

USAGE:
  mario generate --scheme <G|V|X|W:k|H:k|F|Z|ZV> --devices <D> --micros <N>
                 [--mario] [--out <file>]
  mario optimize --model <name> --devices <D> --gbs <B>
                 [--mem-gb <G>] [--scheme <V|X|W:2>] [--out <file>]
  mario simulate --schedule <file> --model <name> --mbs <M>
                 [--tp <T>] [--viz] [--trace <file>]
  mario emulate  --schedule <file> --model <name> --mbs <M>
                 [--tp <T>] [--jitter <f>] [--iterations <k>]
                 [--backend <thread|event>]

MODELS: gpt3-1.6b | gpt3-13b | llama2-3b | llama2-13b | gpt3-h<hidden>
";

fn parse_model(name: &str) -> Option<ModelConfig> {
    match name {
        "gpt3-1.6b" => Some(ModelConfig::gpt3_1_6b()),
        "gpt3-13b" => Some(ModelConfig::gpt3_13b()),
        "llama2-3b" => Some(ModelConfig::llama2_3b()),
        "llama2-13b" => Some(ModelConfig::llama2_13b()),
        _ => name
            .strip_prefix("gpt3-h")
            .and_then(|h| h.parse().ok())
            .map(ModelConfig::gpt3_scaling),
    }
}

fn parse_scheme(tok: &str) -> Option<SchemeKind> {
    match tok {
        "G" => Some(SchemeKind::GPipe),
        "V" => Some(SchemeKind::OneFOneB),
        "X" => Some(SchemeKind::Chimera),
        "F" => Some(SchemeKind::ForwardOnly),
        "Z" => Some(SchemeKind::ZeroBubbleH1),
        "ZV" => Some(SchemeKind::ZeroBubbleV),
        _ => {
            let (l, c) = tok.split_once(':')?;
            let chunks = c.parse().ok()?;
            match l {
                "W" => Some(SchemeKind::Interleave { chunks }),
                "H" => Some(SchemeKind::Wave { chunks }),
                _ => None,
            }
        }
    }
}

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument '{a}'"));
            };
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => switches.push(name.to_string()),
            }
        }
        Ok(Self { flags, switches })
    }

    fn req(&self, name: &str) -> Result<&str, String> {
        self.flags
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{name}"))
    }

    fn num<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.req(name)?
            .parse()
            .map_err(|_| format!("bad value for --{name}"))
    }

    fn opt_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad value for --{name}")),
        }
    }

    fn has(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

fn emit(schedule: &Schedule, out: Option<&String>) -> Result<(), String> {
    let text = mario::ir::to_text(schedule);
    match out {
        Some(path) => std::fs::write(path, text).map_err(|e| e.to_string())?,
        None => print!("{text}"),
    }
    Ok(())
}

fn load_schedule(args: &Args) -> Result<Schedule, String> {
    let path = args.req("schedule")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let schedule = mario::ir::from_text(&text).map_err(|e| format!("{path}: {e}"))?;
    validate(&schedule)
        .map_err(|e| format!("{path}: schedule is not well-formed: {}", e[0]))?;
    Ok(schedule)
}

fn cost_for(args: &Args, schedule: &Schedule) -> Result<AnalyticCost, String> {
    let model = parse_model(args.req("model")?).ok_or("unknown model")?;
    let mbs: u32 = args.num("mbs")?;
    let tp: u32 = args.opt_num("tp", 1)?;
    let setup = TrainSetup::pipeline(model, GpuSpec::a100_40g(), schedule.topology, mbs)
        .with_tp(tp);
    Ok(AnalyticCost::new(&setup))
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let scheme = parse_scheme(args.req("scheme")?).ok_or("unknown scheme")?;
    let devices: u32 = args.num("devices")?;
    let micros: u32 = args.num("micros")?;
    if devices == 0 || micros == 0 {
        return Err("--devices and --micros must be at least 1".into());
    }
    if matches!(scheme, SchemeKind::Chimera) && (!devices.is_multiple_of(2) || !micros.is_multiple_of(2)) {
        return Err("Chimera (X) needs even --devices and even --micros".into());
    }
    if matches!(scheme, SchemeKind::Interleave { .. }) && !micros.is_multiple_of(devices) {
        return Err("Interleave (W) needs --micros divisible by --devices".into());
    }
    let mut s = generate(ScheduleConfig::new(scheme, devices, micros));
    if args.has("mario") {
        let cost = UnitCost::paper_grid();
        run_graph_tuner(&mut s, &cost, GraphTunerOptions::mario());
    }
    validate(&s).map_err(|e| format!("generated schedule invalid: {}", e[0]))?;
    emit(&s, args.flags.get("out"))
}

fn cmd_optimize(args: &Args) -> Result<(), String> {
    let model = parse_model(args.req("model")?).ok_or("unknown model")?;
    let devices: u32 = args.num("devices")?;
    let gbs: u32 = args.num("gbs")?;
    let mem_gb: u64 = args.opt_num("mem-gb", 40)?;
    let scheme_choice = match args.flags.get("scheme") {
        None => SchemeChoice::Auto,
        Some(t) => SchemeChoice::Fixed(vec![parse_scheme(t).ok_or("unknown scheme")?]),
    };
    let conf = MarioConfig {
        pipeline_scheme: scheme_choice,
        global_batch_size: gbs,
        num_devices: devices,
        memory_per_device: mem_gb << 30,
    };
    let opt = optimize(&conf, &model, &GpuSpec::a100_40g()).map_err(|e| e.to_string())?;
    eprintln!(
        "best: {}  ({:.2} samples/s simulated, memory [{:.2}, {:.2}] GB, tuned in {:.0} ms)",
        opt.evaluation.candidate,
        opt.evaluation.throughput,
        opt.evaluation.peak_mem.0 as f64 / (1u64 << 30) as f64,
        opt.evaluation.peak_mem.1 as f64 / (1u64 << 30) as f64,
        opt.tuning_time.as_secs_f64() * 1e3,
    );
    emit(&opt.schedule, args.flags.get("out"))
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let schedule = load_schedule(args)?;
    let cost = cost_for(args, &schedule)?;
    let cap = mario::core::tuner::scheme_channel_capacity(schedule.topology.scheme);
    let report = simulate(
        &schedule,
        &cost,
        SimOptions {
            channel_capacity: cap,
            mem_capacity: None,
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "iteration: {:.3} ms  ({:.2} iterations/s)",
        report.timeline.total_ns as f64 / 1e6,
        1e9 / report.timeline.total_ns as f64
    );
    println!(
        "peak memory: [{:.2}, {:.2}] GB across {} devices",
        report.memory.min_peak() as f64 / (1u64 << 30) as f64,
        report.memory.max_peak() as f64 / (1u64 << 30) as f64,
        schedule.devices()
    );
    if args.has("viz") {
        let opts = mario::core::VizOptions {
            ns_per_cell: report.timeline.total_ns / 120 + 1,
            show_micro_ids: false,
        };
        println!("{}", mario::core::render_ascii(&report.timeline, opts));
    }
    if let Some(path) = args.flags.get("trace") {
        std::fs::write(path, mario::core::sim_to_chrome_trace(&report.timeline))
            .map_err(|e| e.to_string())?;
        eprintln!("chrome trace written to {path}");
    }
    Ok(())
}

fn cmd_emulate(args: &Args) -> Result<(), String> {
    let schedule = load_schedule(args)?;
    let cost = cost_for(args, &schedule)?;
    let cap = mario::core::tuner::scheme_channel_capacity(schedule.topology.scheme);
    let jitter: f64 = args.opt_num("jitter", 0.0)?;
    if !(0.0..=0.25).contains(&jitter) {
        return Err("--jitter must be in [0, 0.25]".into());
    }
    let iterations: u32 = args.opt_num("iterations", 1)?;
    if iterations == 0 {
        return Err("--iterations must be at least 1".into());
    }
    let backend = match args.flags.get("backend").map(String::as_str) {
        None | Some("thread") => EmulatorBackend::Thread,
        Some("event") => EmulatorBackend::Event,
        Some(other) => return Err(format!("--backend must be thread or event, got '{other}'")),
    };
    let report = mario::cluster::run(
        &schedule,
        &cost,
        EmulatorConfig {
            channel_capacity: cap,
            jitter,
            iterations,
            backend,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "iteration: {:.3} ms over {} emulated devices",
        report.iter_ns as f64 / 1e6,
        report.device_clocks.len()
    );
    println!(
        "peak memory: [{:.2}, {:.2}] GB",
        report.min_peak_mem() as f64 / (1u64 << 30) as f64,
        report.max_peak_mem() as f64 / (1u64 << 30) as f64
    );
    Ok(())
}

fn run_cli(argv: Vec<String>) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err("no command".into());
    };
    let args = Args::parse(&argv[1..])?;
    match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "optimize" => cmd_optimize(&args),
        "simulate" => cmd_simulate(&args),
        "emulate" => cmd_emulate(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
