//! # mario — near zero-cost activation checkpointing in pipeline parallelism
//!
//! A from-scratch Rust reproduction of *Mario* (PPoPP '25): a pipeline
//! optimizer that tessellates activation checkpointing into existing
//! pipeline-parallel schedules (1F1B/"V", Chimera/"X", Interleave/"W"),
//! hides the recomputation inside pipeline bubbles, and automatically
//! searches checkpointing + pipeline configurations with a lightweight
//! simulator — all running against an emulated multi-GPU cluster.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`ir`] — instruction IR, virtual pipeline, validation;
//! * [`schedules`] — schedule generators for the supported schemes;
//! * [`model`] — transformer cost model, A100 hardware model, profiling;
//! * [`cluster`] — the threaded virtual-time cluster emulator;
//! * [`core`] — graph-tuner passes, DP simulator, schedule tuner, the
//!   `optimize`/`run` API and visualization.
//!
//! ## Quickstart
//!
//! ```
//! use mario::prelude::*;
//!
//! // Listing 1 of the paper: pick a model, a cluster, and let Mario
//! // search for the best pipeline + checkpointing configuration.
//! let mario_conf = MarioConfig::auto(8, 32, 40 * (1 << 30));
//! let model_conf = ModelConfig::gpt3_1_6b();
//! let gpu = GpuSpec::a100_40g();
//!
//! let schedule = mario::core::optimize(&mario_conf, &model_conf, &gpu).unwrap();
//! println!("best config: {}", schedule.evaluation.candidate);
//!
//! let report = mario::core::run(&schedule, Default::default()).unwrap();
//! assert!(report.total_ns > 0);
//! ```

pub use mario_cluster as cluster;
pub use mario_core as core;
pub use mario_ir as ir;
pub use mario_model as model;
pub use mario_schedules as schedules;

/// The most common imports in one place.
pub mod prelude {
    pub use mario_cluster::{EmulatorBackend, EmulatorConfig, RunReport};
    pub use mario_core::{
        apply_checkpoint, optimize, overlap_recompute, prepose_forward, remove_redundancy, run,
        run_graph_tuner, simulate, simulate_memory, simulate_timeline, simulate_timeline_ckpt,
        simulate_timeline_iters, simulate_timeline_startup, simulate_timeline_with,
        GraphTunerOptions, MarioConfig, SchemeChoice, SimOptions, TunerConfig,
    };
    pub use mario_ir::{
        validate, CheckpointPolicy, CostModel, DeviceId, Instr, InstrKind, MicroId, PartId,
        PerturbationProfile, Schedule, SchemeKind, ShardedWrite, Topology, UnitCost,
    };
    pub use mario_model::{AnalyticCost, GpuSpec, ModelConfig, StagePartition, TrainSetup};
    pub use mario_schedules::{generate, generate_compute, ScheduleConfig};
}
