//! Long-context training: how far can the sequence length stretch on a
//! fixed 16-GPU budget? Combines pipeline parallelism, tensor parallelism
//! and Mario's checkpointing (the paper's §6.5 user story).
//!
//! ```sh
//! cargo run --release --example long_sequence
//! ```

use mario::prelude::*;

fn max_seqlen(tp: u32, mario_passes: bool) -> u32 {
    let pp = 8u32;
    let micros = 16u32;
    let gpu = GpuSpec::a100_40g();
    let mut best = 0;
    let mut seq = 1024u32;
    while seq <= 65_536 {
        let model = ModelConfig::gpt3_1_6b().with_seqlen(seq);
        let topo = Topology::new(SchemeKind::OneFOneB, pp);
        let setup = TrainSetup::pipeline(model, gpu.clone(), topo, 1).with_tp(tp);
        let cost = AnalyticCost::new(&setup);
        let mut schedule = generate(ScheduleConfig::new(SchemeKind::OneFOneB, pp, micros));
        if mario_passes {
            run_graph_tuner(
                &mut schedule,
                &cost,
                GraphTunerOptions {
                    prepose: false,
                    ..GraphTunerOptions::mario()
                },
            );
        }
        let fits = simulate_memory(&schedule, &cost, Some(gpu.mem_bytes))
            .oom
            .is_none();
        if !fits {
            break;
        }
        best = seq;
        seq *= 2;
    }
    // Refine at the paper's 64-token granularity.
    let mut lo = best;
    let mut hi = (best * 2).min(65_536);
    while hi - lo > 64 {
        let mid = (lo + hi) / 2 / 64 * 64;
        let model = ModelConfig::gpt3_1_6b().with_seqlen(mid);
        let topo = Topology::new(SchemeKind::OneFOneB, pp);
        let setup = TrainSetup::pipeline(model, gpu.clone(), topo, 1).with_tp(tp);
        let cost = AnalyticCost::new(&setup);
        let mut schedule = generate(ScheduleConfig::new(SchemeKind::OneFOneB, pp, micros));
        if mario_passes {
            run_graph_tuner(
                &mut schedule,
                &cost,
                GraphTunerOptions {
                    prepose: false,
                    ..GraphTunerOptions::mario()
                },
            );
        }
        if simulate_memory(&schedule, &cost, Some(gpu.mem_bytes)).oom.is_none() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn main() {
    println!("GPT3-1.6B, 16 GPUs (PP 8), micro-batch 1 — longest trainable sequence:\n");
    let a = max_seqlen(1, false);
    let b = max_seqlen(2, false);
    let c = max_seqlen(2, true);
    println!("  PP:8 TP:1            -> {a:>6} tokens");
    println!("  PP:8 TP:2            -> {b:>6} tokens ({:.2}x)", b as f64 / a as f64);
    println!("  PP:8 TP:2 + Mario    -> {c:>6} tokens ({:.2}x)", c as f64 / a as f64);
    println!(
        "\nMario stretches the context a further {:.2}x beyond tensor parallelism alone.",
        c as f64 / b as f64
    );
}
