//! Autotune a 16-GPU cluster (paper §5.3/§6.7 in miniature): grid-search
//! scheme × pipeline depth × data parallelism × micro-batch size ×
//! checkpointing with the lightweight simulator, then validate the winner
//! on the cluster emulator.
//!
//! ```sh
//! cargo run --release --example autotune
//! ```

use mario::prelude::*;

fn main() {
    let model = ModelConfig::llama2_3b();
    let gpu = GpuSpec::a100_40g();
    let cfg = TunerConfig {
        mbs_options: vec![1, 2, 4, 8],
        ..TunerConfig::new(16, 128, gpu.mem_bytes)
    };

    println!("tuning {} on 16 emulated A100s, gbs 128 ...", model.name);
    let result = mario::core::tune(&model, &gpu, &cfg).expect("feasible config exists");
    println!(
        "{} configurations evaluated in {:.1} s\n",
        result.curve.len(),
        result.tuning_time.as_secs_f64()
    );

    // The Fig. 11-style curve: throughput along tuning iterations.
    println!("{:<16} {:>12} {:>6}", "config", "samples/s", "OOM");
    for e in &result.curve {
        println!(
            "{:<16} {:>12.2} {:>6}",
            e.candidate.to_string(),
            e.throughput,
            if e.oom { "yes" } else { "" }
        );
    }

    let best = &result.best;
    println!(
        "\nbest: {}  ({:.2} samples/s simulated)",
        best.candidate, best.throughput
    );

    // Cross-check the winner on the emulator.
    let mario_conf = MarioConfig {
        pipeline_scheme: SchemeChoice::Fixed(vec![best.candidate.scheme]),
        global_batch_size: 128,
        num_devices: 16,
        memory_per_device: gpu.mem_bytes,
    };
    let optimized = mario::core::optimize(&mario_conf, &model, &gpu).unwrap();
    let report = mario::core::run(
        &optimized,
        EmulatorConfig {
            jitter: 0.02,
            mem_capacity: Some(gpu.mem_bytes),
            ..Default::default()
        },
    )
    .unwrap();
    println!(
        "emulator confirms: {:.2} samples/s per pipeline (iteration {:.1} ms)",
        report.throughput((128 / optimized.evaluation.candidate.dp) as u64),
        report.iter_ns as f64 / 1e6
    );
}
