//! Train GPT3-13B on an emulated 32-GPU pipeline: the baseline 1F1B
//! schedule blows the 40 GB device memory on the early stages (imbalanced
//! activations), Mario's checkpointing passes rescue it, and the freed
//! memory buys a larger micro-batch.
//!
//! ```sh
//! cargo run --release --example train_gpt3_cluster
//! ```

use mario::prelude::*;
use mario_core::passes::PreposeOptions;

fn gib(b: u64) -> f64 {
    b as f64 / (1u64 << 30) as f64
}

fn attempt(label: &str, mbs: u32, mario_passes: bool) {
    let devices = 32u32;
    let gbs = 128u32;
    let micros = gbs / mbs;
    let model = ModelConfig::gpt3_13b();
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(SchemeKind::OneFOneB, devices);
    let setup = TrainSetup::pipeline(model, gpu.clone(), topo, mbs);
    let cost = AnalyticCost::new(&setup);

    let mut schedule = generate(ScheduleConfig::new(SchemeKind::OneFOneB, devices, micros));
    if mario_passes {
        let stats = run_graph_tuner(
            &mut schedule,
            &cost,
            GraphTunerOptions {
                prepose_opts: PreposeOptions {
                    mem_capacity: Some(gpu.mem_bytes),
                    max_rounds: 2,
                    ..Default::default()
                },
                ..GraphTunerOptions::mario()
            },
        );
        println!(
            "[{label}] graph tuner: {} ckpt, {} overlapped, {} reverted, {} preposed",
            stats.checkpointed, stats.overlapped, stats.reverted, stats.preposed
        );
    }

    match mario::cluster::run(
        &schedule,
        &cost,
        EmulatorConfig {
            jitter: 0.02,
            mem_capacity: Some(gpu.mem_bytes),
            ..Default::default()
        },
    ) {
        Ok(report) => {
            println!(
                "[{label}] mbs {mbs}: {:.2} samples/s, peak memory [{:.2}, {:.2}] GB",
                report.throughput(gbs as u64),
                gib(report.min_peak_mem()),
                gib(report.max_peak_mem()),
            );
        }
        Err(e) => {
            println!("[{label}] mbs {mbs}: FAILED — {e}");
            // Show where the memory went with the offline simulator.
            let mem = simulate_memory(&schedule, &cost, None);
            println!(
                "[{label}]   simulator says peak would be [{:.2}, {:.2}] GB across devices",
                gib(mem.min_peak()),
                gib(mem.max_peak())
            );
        }
    }
}

fn main() {
    println!("GPT3-13B, 32 emulated A100-40G GPUs, global batch 128\n");
    // 1. The baseline OOMs: device 0 buffers up to 32 micro-batches.
    attempt("V-base", 2, false);
    // 2. Mario checkpointing flattens memory to ~one activation replica.
    attempt("V-mario", 2, true);
    // 3. The freed memory affords twice the micro-batch size.
    attempt("V-mario-lmbs", 4, true);
}
