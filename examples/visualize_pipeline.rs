//! Visualize pipeline schedules (paper Fig. 5): ASCII Gantt charts for
//! V/X/W pipelines with and without Mario's checkpointing, plus SVG files
//! written next to the binary output.
//!
//! Legend: `F` forward, `f` checkpointed forward, `B` backward,
//! `R` recompute, `.` bubble.
//!
//! ```sh
//! cargo run --release --example visualize_pipeline
//! ```

use mario::prelude::*;
use mario_core::viz::{render_ascii, render_svg, VizOptions};

fn show(scheme: SchemeKind, devices: u32, micros: u32) {
    let cost = UnitCost::paper_grid();
    let cap = if matches!(scheme, SchemeKind::Wave { .. }) { 2 } else { 1 };

    let base = generate(ScheduleConfig::new(scheme, devices, micros));
    let t = simulate_timeline(&base, &cost, cap).unwrap();
    println!(
        "== {:?} (D={devices}, N={micros}) — baseline, {}t ==",
        scheme,
        t.total_ns / 1000
    );
    println!("{}", render_ascii(&t, VizOptions::default()));

    let mut mario = base.clone();
    run_graph_tuner(&mut mario, &cost, GraphTunerOptions::mario());
    let tm = simulate_timeline(&mario, &cost, cap).unwrap();
    println!(
        "== {:?} — with Mario checkpointing, {}t ==",
        scheme,
        tm.total_ns / 1000
    );
    println!("{}", render_ascii(&tm, VizOptions::default()));

    let name = format!(
        "pipeline_{}_d{devices}_n{micros}.svg",
        scheme.shape_letter()
    );
    std::fs::write(&name, render_svg(&tm, VizOptions::default())).expect("write svg");
    println!("(SVG written to {name})\n");
}

fn main() {
    show(SchemeKind::OneFOneB, 4, 6);
    show(SchemeKind::Chimera, 4, 4);
    show(SchemeKind::Interleave { chunks: 2 }, 4, 8);
}
