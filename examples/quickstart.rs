//! Quickstart: the paper's Listing 1 — configure Mario, let it search for
//! the best pipeline + checkpointing configuration, then execute the tuned
//! schedule on the emulated cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mario::prelude::*;

fn main() {
    // mario_conf = { 'pipeline_scheme': 'Auto', 'global_batch_size': 128,
    //                'num_device': 8, 'memory_per_device': '40G' }
    let mario_conf = MarioConfig::auto(8, 128, 40 * (1 << 30));
    // model_conf = { 'type': 'GPT3', 'hidden_size': 1024, ... }
    let model_conf = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();

    // schedule = mario.optimize(mario_conf, model_conf)
    let optimized = mario::core::optimize(&mario_conf, &model_conf, &gpu)
        .expect("a feasible configuration exists");

    println!("model: {}", model_conf.name);
    println!(
        "best configuration: {}  (searched in {:.0} ms)",
        optimized.evaluation.candidate,
        optimized.tuning_time.as_secs_f64() * 1e3
    );
    println!(
        "simulated throughput: {:.2} samples/s, peak memory [{:.2}, {:.2}] GB",
        optimized.evaluation.throughput,
        optimized.evaluation.peak_mem.0 as f64 / (1u64 << 30) as f64,
        optimized.evaluation.peak_mem.1 as f64 / (1u64 << 30) as f64,
    );
    println!(
        "graph tuner: {} forwards checkpointed, {} recomputes overlapped, {} reverted, {} preposed",
        optimized.stats.checkpointed,
        optimized.stats.overlapped,
        optimized.stats.reverted,
        optimized.stats.preposed,
    );

    // mario.run(schedule) — on the emulated cluster.
    let report = mario::core::run(
        &optimized,
        EmulatorConfig {
            jitter: 0.02,
            mem_capacity: Some(mario_conf.memory_per_device),
            ..Default::default()
        },
    )
    .expect("tuned schedule executes");
    println!(
        "emulated run: {:.2} samples/s over {} devices",
        report.throughput(mario_conf.global_batch_size as u64),
        report.device_clocks.len(),
    );
}
