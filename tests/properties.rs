//! Property-based invariants spanning the whole stack: schedule
//! generation → graph tuning → simulation → emulation.

use mario::prelude::*;
use mario_core::passes::PreposeOptions;
use proptest::prelude::*;

/// Strategy: a scheme with compatible (devices, micros).
fn scheme_config() -> impl Strategy<Value = (SchemeKind, u32, u32)> {
    prop_oneof![
        // GPipe / 1F1B: any D, any N.
        (2u32..=6, 1u32..=12).prop_map(|(d, n)| (SchemeKind::GPipe, d, n)),
        (2u32..=6, 1u32..=12).prop_map(|(d, n)| (SchemeKind::OneFOneB, d, n)),
        // Chimera: even D, even N.
        (1u32..=3, 1u32..=6).prop_map(|(d, n)| (SchemeKind::Chimera, 2 * d, 2 * n)),
        // Interleave: N a multiple of D.
        (2u32..=4, 1u32..=3, 1u32..=3)
            .prop_map(|(d, k, c)| (SchemeKind::Interleave { chunks: c }, d, k * d)),
        // Wave: any N.
        (2u32..=4, 1u32..=8, 1u32..=3)
            .prop_map(|(d, n, c)| (SchemeKind::Wave { chunks: c }, d, n)),
        // Zero-bubble H1: any D, any N (the 1F1B chain, split backwards).
        (2u32..=6, 1u32..=12).prop_map(|(d, n)| (SchemeKind::ZeroBubbleH1, d, n)),
        // Zero-bubble V: any N (two reflected chunks per device).
        (2u32..=4, 1u32..=8).prop_map(|(d, n)| (SchemeKind::ZeroBubbleV, d, n)),
    ]
}

fn cap_of(scheme: SchemeKind) -> usize {
    match scheme {
        SchemeKind::Wave { .. } | SchemeKind::ZeroBubbleV => 2,
        _ => 1,
    }
}

/// A deterministic Fisher–Yates permutation of `0..devices`, for the
/// event executor's order-insensitivity checks.
fn permutation(devices: u32, seed: u64) -> Vec<u32> {
    let mut v: Vec<u32> = (0..devices).collect();
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated schedule is structurally valid and executable.
    #[test]
    fn generated_schedules_validate((scheme, d, n) in scheme_config()) {
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let opts = mario::ir::ValidateOptions {
            channel_capacity: cap_of(scheme),
            ..Default::default()
        };
        prop_assert!(mario::ir::validate_with(&s, opts).is_ok());
    }

    /// The graph tuner preserves validity and the forward/backward
    /// multiset on every scheme.
    #[test]
    fn graph_tuner_preserves_validity((scheme, d, n) in scheme_config()) {
        let base = generate(ScheduleConfig::new(scheme, d, n));
        let fw = base.count_tag(mario::ir::InstrTag::Forward);
        let bw = base.count_tag(mario::ir::InstrTag::Backward);
        let cost = UnitCost::paper_grid();
        let mut tuned = base.clone();
        run_graph_tuner(
            &mut tuned,
            &cost,
            GraphTunerOptions {
                prepose_opts: PreposeOptions {
                    channel_capacity: cap_of(scheme),
                    ..Default::default()
                },
                ..GraphTunerOptions::mario()
            },
        );
        let opts = mario::ir::ValidateOptions {
            channel_capacity: cap_of(scheme),
            ..Default::default()
        };
        prop_assert!(mario::ir::validate_with(&tuned, opts).is_ok(),
            "tuned schedule invalid for {scheme:?} D={d} N={n}");
        prop_assert_eq!(tuned.count_tag(mario::ir::InstrTag::Forward), fw);
        prop_assert_eq!(tuned.count_tag(mario::ir::InstrTag::Backward), bw);
        // Every checkpointed forward has exactly one recompute.
        prop_assert_eq!(
            tuned.count_ckpt_forwards(),
            tuned.count_tag(mario::ir::InstrTag::Recompute)
        );
    }

    /// Three-way parity: the DP simulator, the threaded emulator and the
    /// discrete-event executor agree exactly when jitter is zero — on
    /// timing and on peak memory.
    #[test]
    fn simulator_matches_emulator((scheme, d, n) in scheme_config()) {
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid().with_ckpt_bytes(1);
        let cap = cap_of(scheme);
        let sim = simulate_timeline(&s, &cost, cap).unwrap();
        let mem = simulate_memory(&s, &cost, None);
        let cfg = EmulatorConfig {
            channel_capacity: cap,
            ..Default::default()
        };
        let emu = mario::cluster::run(&s, &cost, cfg).unwrap();
        let ev = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..cfg
            },
        )
        .unwrap();
        prop_assert_eq!(&sim.device_clocks, &emu.device_clocks);
        prop_assert_eq!(&mem.peak, &emu.peak_mem);
        prop_assert_eq!(&ev.device_clocks, &emu.device_clocks,
            "event backend diverged on {:?} D={} N={}", scheme, d, n);
        prop_assert_eq!(&ev.peak_mem, &emu.peak_mem);
        prop_assert_eq!(ev.total_ns, emu.total_ns);
    }

    /// Mario never increases the simulated makespan relative to naive
    /// checkpointing, and never increases peak memory relative to the
    /// baseline.
    #[test]
    fn mario_dominates_naive_checkpointing((scheme, d, n) in scheme_config()) {
        let base = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid();
        let cap = cap_of(scheme);

        let mut naive = base.clone();
        run_graph_tuner(&mut naive, &cost, GraphTunerOptions::ckpt_only());
        let mut mario_s = base.clone();
        run_graph_tuner(
            &mut mario_s,
            &cost,
            GraphTunerOptions {
                prepose_opts: PreposeOptions {
                    channel_capacity: cap,
                    ..Default::default()
                },
                ..GraphTunerOptions::mario()
            },
        );

        let t_naive = simulate_timeline(&naive, &cost, cap).unwrap().total_ns;
        let t_mario = simulate_timeline(&mario_s, &cost, cap).unwrap().total_ns;
        prop_assert!(t_mario <= t_naive,
            "mario {t_mario} worse than naive {t_naive} on {scheme:?} D={d} N={n}");

        let m_base = simulate_memory(&base, &cost, None).max_peak();
        let m_mario = simulate_memory(&mario_s, &cost, None).max_peak();
        prop_assert!(m_mario <= m_base,
            "mario mem {m_mario} worse than base {m_base} on {scheme:?} D={d} N={n}");
    }

    /// The tuned schedule still deadlock-free under the emulator's blocking
    /// p2p (the pass-4 SA/RA pairing discipline).
    #[test]
    fn tuned_schedules_execute_on_the_emulator((scheme, d, n) in scheme_config()) {
        let mut s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid();
        let cap = cap_of(scheme);
        run_graph_tuner(
            &mut s,
            &cost,
            GraphTunerOptions {
                prepose_opts: PreposeOptions {
                    channel_capacity: cap,
                    ..Default::default()
                },
                ..GraphTunerOptions::mario()
            },
        );
        let r = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                channel_capacity: cap,
                watchdog: std::time::Duration::from_secs(5),
                ..Default::default()
            },
        );
        prop_assert!(r.is_ok(), "{:?}", r.err());
    }

    /// Memory accounting is conserved: after a full iteration no dynamic
    /// allocation survives on any device (checked indirectly: peaks are
    /// reproducible when running two iterations back to back).
    #[test]
    fn two_iterations_have_same_peak((scheme, d, n) in scheme_config()) {
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid().with_ckpt_bytes(1);
        let cap = cap_of(scheme);
        let one = mario::cluster::run(&s, &cost, EmulatorConfig {
            channel_capacity: cap, ..Default::default()
        }).unwrap();
        let two = mario::cluster::run(&s, &cost, EmulatorConfig {
            channel_capacity: cap, iterations: 2, ..Default::default()
        }).unwrap();
        prop_assert_eq!(one.peak_mem, two.peak_mem);
    }

    /// The split-backward memory lifecycle (activations stay live until
    /// `Bw`) is charged identically by the DP simulator and both emulator
    /// backends: peak memory agrees bit-for-bit on split schedules.
    #[test]
    fn split_backward_peak_memory_matches_three_ways((scheme, d, n) in scheme_config()) {
        let mut s = generate(ScheduleConfig::new(scheme, d, n));
        // Split the full backwards (a no-op on the already-split ZB
        // schemes, which still exercises the Bi/Bw accounting).
        mario_core::passes::split_backward(
            &mut s,
            mario_core::passes::SplitOptions::default(),
        );
        let cost = UnitCost::paper_grid().with_ckpt_bytes(1);
        let cap = cap_of(scheme).max(2); // deferral can deepen recv queues
        let opts = mario::ir::ValidateOptions {
            channel_capacity: cap,
            ..Default::default()
        };
        prop_assert!(mario::ir::validate_with(&s, opts).is_ok());
        let mem = simulate_memory(&s, &cost, None);
        let cfg = EmulatorConfig {
            channel_capacity: cap,
            ..Default::default()
        };
        let emu = mario::cluster::run(&s, &cost, cfg).unwrap();
        let ev = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..cfg
            },
        )
        .unwrap();
        prop_assert_eq!(&mem.peak, &emu.peak_mem,
            "sim vs thread peak diverged on split {:?} D={} N={}", scheme, d, n);
        prop_assert_eq!(&ev.peak_mem, &emu.peak_mem,
            "event vs thread peak diverged on split {:?} D={} N={}", scheme, d, n);
    }
}

// Fault injection: a seeded hard fault (device crash or link stall) on any
// scheme always terminates the run with a structured report naming the
// injected fault — never a hang, never a panic — and the same seed
// reproduces the identical report.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn injected_hard_faults_terminate_with_attribution(
        (scheme, d, n) in scheme_config(),
        seed in 0u64..1024,
    ) {
        use mario::cluster::FaultPlan;

        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid();
        let cfg = EmulatorConfig {
            channel_capacity: cap_of(scheme),
            watchdog: std::time::Duration::from_millis(300),
            ..Default::default()
        };
        let plan = FaultPlan::single_crash_or_stall(seed, &s);
        let injected = plan.faults[0];
        let first = mario::cluster::run_with_faults(&s, &cost, cfg, &plan);
        let err = match first {
            Err(e) => e,
            Ok(_) => return Err(format!(
                "hard fault {injected} absorbed on {scheme:?} D={d} N={n}"
            )),
        };
        let report = match err.fault_report() {
            Some(r) => r.clone(),
            None => return Err(format!(
                "unattributed error {err} for {injected} on {scheme:?} D={d} N={n}"
            )),
        };
        prop_assert_eq!(report.fault, injected);

        // Reproducibility: the same seeded plan yields the identical report.
        let again = mario::cluster::run_with_faults(&s, &cost, cfg, &plan);
        let err2 = again.expect_err("same plan, same failure");
        prop_assert_eq!(Some(&report), err2.fault_report());

        // And the fault layer stays inert without a plan: the same config
        // runs clean.
        let clean = mario::cluster::run_with_faults(&s, &cost, cfg, &FaultPlan::none());
        prop_assert!(clean.is_ok(), "{:?}", clean.err());
    }
}

// Degraded-mode fidelity: the DP simulator under a perturbation profile
// derived from an absorbable fault plan agrees bit-for-bit with the
// zero-jitter emulator running the faults themselves — on every scheme,
// and across multi-iteration runs where the faults fire in a later
// iteration (the profile windows carry the plan's iteration scope).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn degraded_simulator_matches_faulted_emulator(
        (scheme, d, n) in scheme_config(),
        seed_a in 0u64..512,
        seed_b in 0u64..512,
        iters in 1u32..=3,
    ) {
        use mario::cluster::FaultPlan;

        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid();
        let cap = cap_of(scheme);
        // Two independently drawn absorbable faults (stragglers, slow
        // links) merged into one plan — overlapping windows and duplicate
        // packet delays included — scoped to a seeded iteration of the
        // run, so agreement must hold beyond iteration 0.
        let mut plan = FaultPlan::single_absorbable(seed_a, &s);
        plan.faults
            .extend(FaultPlan::single_absorbable(seed_b, &s).faults);
        let plan = plan.at_iteration((seed_a % iters as u64) as u32);
        prop_assert!(plan.is_absorbable());

        let profile = plan.perturbation_profile();
        let sim = simulate_timeline_iters(&s, &cost, cap, &profile, iters)
            .expect("degraded simulation completes");
        let emu = mario::cluster::run_with_faults(
            &s,
            &cost,
            EmulatorConfig {
                channel_capacity: cap,
                iterations: iters,
                ..Default::default()
            },
            &plan,
        )
        .expect("absorbable plan completes");
        prop_assert_eq!(&sim.device_clocks, &emu.device_clocks,
            "scheme {:?} D={} N={} iters {} plan {:?}", scheme, d, n, iters, plan.faults);
        prop_assert_eq!(sim.total_ns, emu.total_ns);
    }

    /// The identity profile cannot perturb the fault-free path: degraded
    /// mode with nothing to enforce reproduces the baseline simulation
    /// bit for bit, event for event, on every scheme.
    #[test]
    fn identity_profile_is_inert((scheme, d, n) in scheme_config()) {
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid();
        let cap = cap_of(scheme);
        let base = simulate_timeline(&s, &cost, cap).unwrap();
        let degraded =
            simulate_timeline_with(&s, &cost, cap, &PerturbationProfile::identity()).unwrap();
        prop_assert_eq!(&base.device_clocks, &degraded.device_clocks);
        prop_assert_eq!(base.total_ns, degraded.total_ns);
        let flat = |t: &mario::core::SimTimeline| -> Vec<(u32, String, u64, u64)> {
            t.events
                .iter()
                .map(|e| (e.device.0, e.instr.clone(), e.start, e.end))
                .collect()
        };
        prop_assert_eq!(flat(&base), flat(&degraded));
    }
}

// Checkpoint-restart: on every scheme, a crash landing after the first
// completed checkpoint boundary makes resume-from-checkpoint strictly
// cheaper than restart-from-zero (write costs included), and the resumed
// final attempt is indistinguishable from a fresh run of the remaining
// iterations.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resume_from_checkpoint_beats_restart_from_zero(
        (scheme, d, n) in scheme_config(),
        k in 1u32..=2,
        f_off in 0u32..64,
        site in 0u32..4096,
    ) {
        use mario::cluster::{FaultKind, FaultPlan};

        const ITERS: u32 = 6;
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid();
        // Crash in an iteration at or past the first checkpoint boundary,
        // so the resumed attempt has durable progress to build on.
        let f = k + f_off % (ITERS - k);
        let device = DeviceId(site % d);
        let len = s.programs()[device.index()].len() as u32;
        prop_assume!(len > 0);
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device,
                pc: ((site * 7) % len) as usize,
            })
            .at_iteration(f);
        let base = EmulatorConfig {
            channel_capacity: cap_of(scheme),
            iterations: ITERS,
            watchdog: std::time::Duration::from_millis(300),
            ..Default::default()
        };
        let with_ckpt = EmulatorConfig {
            checkpoint: Some(CheckpointPolicy::every(k).with_write_ns(20)),
            ..base
        };

        let resumed = mario::cluster::run_with_recovery(&s, &cost, with_ckpt, &plan, 3)
            .expect("checkpointed recovery completes");
        let restarted = mario::cluster::run_with_recovery(&s, &cost, base, &plan, 3)
            .expect("checkpoint-free recovery completes");

        // Crash in iteration f ⇒ every live device completed 0..f, so the
        // cluster-durable checkpoint is exactly the last boundary ≤ f.
        prop_assert_eq!(resumed.resumed_from, (f / k) * k);
        prop_assert!(resumed.resumed_from >= k);
        prop_assert_eq!(restarted.resumed_from, 0);

        // Resuming is strictly cheaper end to end, checkpoint writes and
        // replayed work both charged.
        prop_assert!(
            resumed.total_ns_with_replay < restarted.total_ns_with_replay,
            "scheme {:?} D={} N={} k={} f={}: resume {} !< restart {}",
            scheme, d, n, k, f,
            resumed.total_ns_with_replay, restarted.total_ns_with_replay
        );

        // The resumed final attempt equals a fresh run of the remaining
        // iterations, clock for clock.
        let fresh = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                iterations: ITERS - resumed.resumed_from,
                ..with_ckpt
            },
        )
        .expect("fresh run of the remaining iterations");
        prop_assert_eq!(&resumed.report.device_clocks, &fresh.device_clocks);
        prop_assert_eq!(resumed.report.total_ns, fresh.total_ns);
    }
}

/// `UnitCost` with a different checkpoint shard on every device, so chunk
/// counts, partial last chunks and drain residues all differ across the
/// pipeline — the sharded-write paths cannot pass by symmetry.
struct PerDeviceShards(UnitCost);

impl CostModel for PerDeviceShards {
    fn compute_time(&self, d: DeviceId, p: PartId, k: mario::ir::ComputeKind) -> u64 {
        self.0.compute_time(d, p, k)
    }
    fn act_full(&self, d: DeviceId, p: PartId) -> u64 {
        self.0.act_full(d, p)
    }
    fn act_ckpt(&self, d: DeviceId, p: PartId) -> u64 {
        self.0.act_ckpt(d, p)
    }
    fn boundary_bytes(&self, d: DeviceId, p: PartId) -> u64 {
        self.0.boundary_bytes(d, p)
    }
    fn p2p_time(&self, bytes: u64) -> u64 {
        self.0.p2p_time(bytes)
    }
    fn allreduce_time(&self, d: DeviceId) -> u64 {
        self.0.allreduce_time(d)
    }
    fn optimizer_time(&self, d: DeviceId) -> u64 {
        self.0.optimizer_time(d)
    }
    fn static_mem(&self, d: DeviceId) -> u64 {
        self.0.static_mem(d)
    }
    fn ckpt_shard_bytes(&self, d: DeviceId) -> u64 {
        900 + 700 * d.0 as u64
    }
}

// Checkpointed parity: with a checkpoint policy active — flat per-device
// write, sharded synchronous flush, or sharded flush overlapped into the
// next iteration's bubbles — the DP simulator and the zero-jitter
// emulator still agree bit-for-bit on every scheme: device clocks, total
// time, the write payments each device actually made, and the
// cluster-durable checkpoint.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpointed_simulator_matches_emulator(
        (scheme, d, n) in scheme_config(),
        mode in 0u8..3,
        k in 1u32..=3,
        iters in 2u32..=4,
    ) {
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = PerDeviceShards(UnitCost::paper_grid());
        let cap = cap_of(scheme);
        // 2 000 bytes/µs over 600-byte chunks: every shard above ends in
        // a partial chunk, and flush times are not multiples of the
        // chunk time.
        let sharded = ShardedWrite::new(2_000, 600);
        let policy = match mode {
            0 => CheckpointPolicy::every(k).with_write_ns(700),
            1 => CheckpointPolicy::every(k).with_sharded(sharded),
            _ => CheckpointPolicy::every(k).with_sharded(sharded.with_async_overlap()),
        };
        let sim = simulate_timeline_ckpt(
            &s,
            &cost,
            cap,
            &PerturbationProfile::identity(),
            iters,
            Some(policy),
        )
        .expect("checkpointed simulation completes");
        let cfg = EmulatorConfig {
            channel_capacity: cap,
            iterations: iters,
            checkpoint: Some(policy),
            ..Default::default()
        };
        let emu = mario::cluster::run(&s, &cost, cfg)
            .expect("checkpointed emulation completes");
        let ev = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..cfg
            },
        )
        .expect("checkpointed event emulation completes");
        prop_assert_eq!(&sim.device_clocks, &emu.device_clocks,
            "scheme {:?} D={} N={} mode {} k={} iters {}", scheme, d, n, mode, k, iters);
        prop_assert_eq!(sim.total_ns, emu.total_ns);
        prop_assert_eq!(sim.ckpt_overhead_ns, emu.ckpt_overhead_ns,
            "paid-write accounting diverged on {:?} D={} N={} mode {} k={} iters {}",
            scheme, d, n, mode, k, iters);
        prop_assert_eq!(sim.last_checkpoint, emu.last_checkpoint);
        prop_assert_eq!(&ev.device_clocks, &emu.device_clocks,
            "event backend diverged on {:?} D={} N={} mode {} k={} iters {}",
            scheme, d, n, mode, k, iters);
        prop_assert_eq!(ev.total_ns, emu.total_ns);
        prop_assert_eq!(ev.ckpt_overhead_ns, emu.ckpt_overhead_ns);
        prop_assert_eq!(ev.last_checkpoint, emu.last_checkpoint);
    }
}

// The send-blocked drain fix, pinned three ways at channel capacity 2:
// Chimera's bidirectional pipelines at capacity 2 produce genuine
// capacity-blocked sends, so an async sharded write that only drained
// into recv gaps would leave residue here. The DP simulator, the thread
// emulator and the event executor must agree on every checkpoint mode.
#[test]
fn checkpointed_parity_holds_on_capacity2_chimera() {
    let s = generate(ScheduleConfig::new(SchemeKind::Chimera, 4, 8));
    let cost = PerDeviceShards(UnitCost::paper_grid());
    let sharded = ShardedWrite::new(2_000, 600);
    for mode in 0u8..3 {
        let policy = match mode {
            0 => CheckpointPolicy::every(1).with_write_ns(700),
            1 => CheckpointPolicy::every(1).with_sharded(sharded),
            _ => CheckpointPolicy::every(1).with_sharded(sharded.with_async_overlap()),
        };
        let sim = simulate_timeline_ckpt(
            &s,
            &cost,
            2,
            &PerturbationProfile::identity(),
            3,
            Some(policy),
        )
        .expect("capacity-2 checkpointed simulation completes");
        let cfg = EmulatorConfig {
            channel_capacity: 2,
            iterations: 3,
            checkpoint: Some(policy),
            ..Default::default()
        };
        let emu = mario::cluster::run(&s, &cost, cfg)
            .expect("capacity-2 checkpointed emulation completes");
        let ev = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..cfg
            },
        )
        .expect("capacity-2 checkpointed event emulation completes");
        assert_eq!(sim.device_clocks, emu.device_clocks, "mode {mode}");
        assert_eq!(sim.ckpt_overhead_ns, emu.ckpt_overhead_ns, "mode {mode}");
        assert_eq!(sim.telemetry, emu.telemetry, "mode {mode}");
        assert_eq!(ev.device_clocks, emu.device_clocks, "mode {mode} (event)");
        assert_eq!(ev.ckpt_overhead_ns, emu.ckpt_overhead_ns, "mode {mode} (event)");
        assert_eq!(ev.telemetry, emu.telemetry, "mode {mode} (event)");
    }
}

// Flight-recorder parity: the full telemetry breakdown — per-device time
// classes, peak memory, fault counters, and per-link transfer stats — is
// populated by the DP simulator and the zero-jitter emulator with
// identical arithmetic. Every scheme, with no checkpointing, a flat
// write, a sharded synchronous flush, and a sharded flush overlapped
// into the bubbles, must agree bit-for-bit; on both sides the classes
// must conserve (sum to the device clock) and the checkpoint classes
// must tie out against the endpoint counters.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn telemetry_matches_between_sim_and_emu(
        (scheme, d, n) in scheme_config(),
        mode in 0u8..4,
        k in 1u32..=3,
        iters in 2u32..=4,
    ) {
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = PerDeviceShards(UnitCost::paper_grid());
        let cap = cap_of(scheme);
        let sharded = ShardedWrite::new(2_000, 600);
        let policy = match mode {
            0 => None,
            1 => Some(CheckpointPolicy::every(k).with_write_ns(700)),
            2 => Some(CheckpointPolicy::every(k).with_sharded(sharded)),
            _ => Some(
                CheckpointPolicy::every(k).with_sharded(sharded.with_async_overlap()),
            ),
        };
        let sim = simulate_timeline_ckpt(
            &s,
            &cost,
            cap,
            &PerturbationProfile::identity(),
            iters,
            policy,
        )
        .expect("simulation completes");
        let cfg = EmulatorConfig {
            channel_capacity: cap,
            iterations: iters,
            checkpoint: policy,
            record_spans: true,
            ..Default::default()
        };
        let emu = mario::cluster::run(&s, &cost, cfg).expect("emulation completes");
        let ev = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..cfg
            },
        )
        .expect("event emulation completes");
        prop_assert_eq!(&sim.telemetry, &emu.telemetry,
            "telemetry diverged on {:?} D={} N={} mode {} k={} iters {}",
            scheme, d, n, mode, k, iters);
        prop_assert_eq!(&ev.telemetry, &emu.telemetry,
            "event telemetry diverged on {:?} D={} N={} mode {} k={} iters {}",
            scheme, d, n, mode, k, iters);
        prop_assert_eq!(&ev.device_clocks, &emu.device_clocks);
        prop_assert!(sim.telemetry.check_conservation(&sim.device_clocks).is_ok(),
            "{:?}", sim.telemetry.check_conservation(&sim.device_clocks));
        prop_assert!(emu.telemetry.check_conservation(&emu.device_clocks).is_ok(),
            "{:?}", emu.telemetry.check_conservation(&emu.device_clocks));
        // The ckpt-sync class is the paid-write counter, never
        // double-counted against the absorbed class.
        prop_assert_eq!(emu.telemetry.total_ckpt_sync_ns(), emu.ckpt_overhead_ns);
        prop_assert_eq!(sim.telemetry.total_ckpt_sync_ns(), sim.ckpt_overhead_ns);
        let bf = emu.telemetry.bubble_fraction(&emu.device_clocks);
        prop_assert!((0.0..=1.0).contains(&bf), "bubble fraction {bf}");
        // The executed span graph — every op's extent, work, and message
        // timing — is identical across all three backends, and the
        // critical path computed from it tiles the makespan exactly.
        let th_spans = emu.spans.as_ref().expect("thread backend recorded spans");
        let ev_spans = ev.spans.as_ref().expect("event backend recorded spans");
        prop_assert_eq!(&sim.spans, th_spans,
            "span graph diverged (sim vs thread) on {:?} D={} N={} mode {} k={} iters {}",
            scheme, d, n, mode, k, iters);
        prop_assert_eq!(ev_spans, th_spans,
            "span graph diverged (event vs thread) on {:?} D={} N={} mode {} k={} iters {}",
            scheme, d, n, mode, k, iters);
        let crit = mario::core::critpath::analyze(&s, &sim.spans);
        prop_assert_eq!(crit.breakdown.total(), sim.total_ns,
            "critical path does not tile the makespan on {:?} mode {}", scheme, mode);
    }
}

// Event-executor determinism: repeated runs are bit-identical, and the
// result is insensitive to the worklist's tie-breaking order — any
// permutation of the initial device order produces the same clocks,
// telemetry and absorbed-fault reports, including under a seeded
// absorbable fault plan (the confluence property that justifies running
// the event core as a stand-in for the thread oracle at scale).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn event_executor_is_deterministic_and_order_insensitive(
        (scheme, d, n) in scheme_config(),
        fault_seed in 0u64..512,
        perm_seed in 0u64..u64::MAX,
        iters in 1u32..=3,
    ) {
        use mario::cluster::FaultPlan;

        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = UnitCost::paper_grid().with_ckpt_bytes(1);
        let plan = FaultPlan::single_absorbable(fault_seed, &s)
            .at_iteration((fault_seed % iters as u64) as u32);
        prop_assert!(plan.is_absorbable());
        let cfg = EmulatorConfig {
            channel_capacity: cap_of(scheme),
            iterations: iters,
            backend: EmulatorBackend::Event,
            ..Default::default()
        };
        let base = mario::cluster::run_with_faults(&s, &cost, cfg, &plan)
            .expect("absorbable plan completes on the event backend");
        // Determinism: a second run is bit-identical.
        let again = mario::cluster::run_with_faults(&s, &cost, cfg, &plan)
            .expect("second run completes");
        prop_assert_eq!(&base.device_clocks, &again.device_clocks);
        prop_assert_eq!(base.total_ns, again.total_ns);
        prop_assert_eq!(&base.telemetry, &again.telemetry);
        prop_assert_eq!(&base.faults, &again.faults);
        // Order insensitivity: seeding the worklist in any permutation of
        // the device order changes nothing.
        let order = permutation(d, perm_seed);
        let shuffled = mario::cluster::event::run_event_ordered(
            &s, &cost, cfg, &plan, &[], &order,
        )
        .expect("permuted worklist completes");
        prop_assert_eq!(&base.device_clocks, &shuffled.device_clocks,
            "order-sensitive result on {:?} D={} N={} order {:?}", scheme, d, n, order);
        prop_assert_eq!(base.total_ns, shuffled.total_ns);
        prop_assert_eq!(&base.telemetry, &shuffled.telemetry);
        prop_assert_eq!(&base.faults, &shuffled.faults);
    }
}

// Conservation is not a fair-weather invariant: a run that absorbs a
// fault (a straggler slowdown or a finite link delay) still accounts for
// every nanosecond — the inflation lands in a class instead of leaking
// out of the breakdown — and the absorbing device reports the fault.
#[test]
fn telemetry_conservation_survives_absorbed_faults() {
    use mario::cluster::FaultPlan;

    let s = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 8));
    let cost = UnitCost::paper_grid().with_ckpt_bytes(1);
    for seed in 0..8u64 {
        let plan = FaultPlan::single_absorbable(seed, &s);
        assert!(plan.is_absorbable());
        let report = mario::cluster::run_with_faults(
            &s,
            &cost,
            EmulatorConfig {
                iterations: 2,
                ..Default::default()
            },
            &plan,
        )
        .expect("absorbable plan completes");
        report
            .telemetry
            .check_conservation(&report.device_clocks)
            .expect("conservation on a faulted run");
        let absorbed: u32 = report
            .telemetry
            .devices
            .iter()
            .map(|t| t.absorbed_faults)
            .sum();
        assert!(absorbed >= 1, "seed {seed}: no absorbed fault recorded");
    }
}

// Chunk-level durability under async overlap: a crash landing while a
// sharded checkpoint is still draining resumes from the last *fully
// flushed* checkpoint — always a whole interval boundary, never a
// partially written one — and the resumed final attempt is
// indistinguishable from a fresh run of the remaining iterations.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn async_crash_resumes_from_a_fully_flushed_checkpoint(
        (scheme, d, n) in scheme_config(),
        k in 1u32..=2,
        f_off in 0u32..64,
        site in 0u32..4096,
    ) {
        use mario::cluster::{FaultKind, FaultPlan};

        const ITERS: u32 = 6;
        let s = generate(ScheduleConfig::new(scheme, d, n));
        let cost = PerDeviceShards(UnitCost::paper_grid());
        let f = k + f_off % (ITERS - k);
        let device = DeviceId(site % d);
        let len = s.programs()[device.index()].len() as u32;
        prop_assume!(len > 0);
        let plan = FaultPlan::none()
            .with(FaultKind::Crash {
                device,
                pc: ((site * 7) % len) as usize,
            })
            .at_iteration(f);
        let cfg = EmulatorConfig {
            channel_capacity: cap_of(scheme),
            iterations: ITERS,
            checkpoint: Some(
                CheckpointPolicy::every(k)
                    .with_sharded(ShardedWrite::new(2_000, 600).with_async_overlap()),
            ),
            watchdog: std::time::Duration::from_millis(300),
            ..Default::default()
        };
        let rec = mario::cluster::run_with_recovery(&s, &cost, cfg, &plan, 3)
            .expect("async-checkpointed recovery completes");

        // Never a partial checkpoint: the resume point is a whole
        // interval boundary, and deferring durability to the chunk drain
        // can only move it *earlier* than the synchronous boundary the
        // crash iteration implies.
        prop_assert_eq!(rec.resumed_from % k, 0,
            "partial checkpoint resumed on {:?} D={} N={} k={} f={}", scheme, d, n, k, f);
        prop_assert!(rec.resumed_from <= (f / k) * k,
            "scheme {:?} D={} N={} k={} f={}: resumed_from {} past the crash boundary {}",
            scheme, d, n, k, f, rec.resumed_from, (f / k) * k);

        // The resumed final attempt equals a fresh run of the remaining
        // iterations, clock for clock — pending chunks from the failed
        // attempt never leak into the restart.
        let fresh = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                iterations: ITERS - rec.resumed_from,
                ..cfg
            },
        )
        .expect("fresh run of the remaining iterations");
        prop_assert_eq!(&rec.report.device_clocks, &fresh.device_clocks);
        prop_assert_eq!(rec.report.total_ns, fresh.total_ns);
        prop_assert_eq!(rec.report.last_checkpoint, fresh.last_checkpoint);
    }
}

// Linear-estimator fits recover arbitrary lines through noisy samples.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn estimator_recovers_lines(a in 0.1f64..1e6, b in 0.0f64..1e9) {
        let samples: Vec<(f64, f64)> =
            (1..=10).map(|x| (x as f64, a * x as f64 + b)).collect();
        let e = mario::model::LinearEstimator::fit(&samples);
        prop_assert!((e.a - a).abs() / a < 1e-6);
        prop_assert!((e.b - b).abs() <= b.max(1.0) * 1e-6 + 1e-3);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Elastic shrink plans stay sound on every scheme: the planned
    /// schedule validates at the plan's channel capacity and executes
    /// deadlock-free on the emulator with the redistribution offsets.
    #[test]
    fn shrunk_plans_validate_and_execute((scheme, d, n) in scheme_config()) {
        use mario_core::{plan_shrink, ElasticSetup};

        let layers = 2 * Topology::new(scheme, d).num_stages();
        let setup = ElasticSetup {
            scheme,
            devices: d,
            micros: n,
            layers,
            state_bytes_per_layer: 1_000,
            fetch_bytes_per_us: 500,
        };
        // Losing the last device may leave no admissible width (e.g.
        // Chimera with one survivor) — declining is the correct answer.
        let Some(plan) = plan_shrink(&setup, &[DeviceId(d - 1)]) else {
            return Ok(());
        };
        prop_assert!(plan.devices < d);
        prop_assert_eq!(plan.survivors.len() as u32, d - 1);
        let opts = mario::ir::ValidateOptions {
            channel_capacity: plan.channel_capacity,
            ..Default::default()
        };
        prop_assert!(mario::ir::validate_with(&plan.schedule, opts).is_ok(),
            "shrunk schedule invalid for {scheme:?} D={d} N={n}");
        let cost = UnitCost::paper_grid();
        let emu = mario::cluster::run_with_faults_startup(
            &plan.schedule,
            &cost,
            EmulatorConfig {
                channel_capacity: plan.channel_capacity,
                ..Default::default()
            },
            &mario::cluster::FaultPlan::none(),
            &plan.startup_ns,
        );
        prop_assert!(emu.is_ok(), "shrunk schedule deadlocked: {:?}", emu.err());
    }

    /// Sim/emu parity holds on the post-reconfiguration topology: with
    /// zero jitter, the DP simulator's prediction of the shrunk pipeline
    /// — redistribution offsets included — matches the emulator
    /// bit-for-bit, telemetry and all.
    #[test]
    fn shrunk_topology_sim_matches_emulator((scheme, d, n) in scheme_config()) {
        use mario_core::{plan_shrink, ElasticSetup, LayerScaledCost};

        let layers = 2 * Topology::new(scheme, d).num_stages();
        let setup = ElasticSetup {
            scheme,
            devices: d,
            micros: n,
            layers,
            state_bytes_per_layer: 1_000,
            fetch_bytes_per_us: 500,
        };
        let Some(plan) = plan_shrink(&setup, &[DeviceId(d - 1)]) else {
            return Ok(());
        };
        // A layer-proportional cost exercises non-uniform stages.
        let cost = LayerScaledCost::new(
            UnitCost::paper_grid().with_ckpt_bytes(1),
            scheme,
            plan.devices,
            layers,
        );
        let iterations = 2;
        let sim = mario_core::simulate_timeline_startup(
            &plan.schedule,
            &cost,
            plan.channel_capacity,
            &PerturbationProfile::identity(),
            iterations,
            None,
            &plan.startup_ns,
        )
        .unwrap();
        let emu = mario::cluster::run_with_faults_startup(
            &plan.schedule,
            &cost,
            EmulatorConfig {
                channel_capacity: plan.channel_capacity,
                iterations,
                ..Default::default()
            },
            &mario::cluster::FaultPlan::none(),
            &plan.startup_ns,
        )
        .unwrap();
        prop_assert_eq!(&sim.device_clocks, &emu.device_clocks);
        prop_assert_eq!(sim.total_ns, emu.total_ns);
        prop_assert_eq!(&sim.telemetry, &emu.telemetry);
        // Every device clock starts at its redistribution offset, and the
        // offset is attributed to the reconfig_ns telemetry class.
        for (i, t) in emu.telemetry.devices.iter().enumerate() {
            prop_assert_eq!(t.classes.reconfig_ns, plan.startup_ns[i]);
            prop_assert_eq!(t.classes.total(), emu.device_clocks[i]);
        }
    }
}

// Serving mode: forward-only fill–drain pipelines under open-loop load.
// Structural validity, the closed-form makespan, three-way parity of the
// whole serving loop, and sentinel-drained crash recovery.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Forward-only schedules validate at capacity 1 and execute
    /// deadlock-free under both backends' blocking p2p, landing exactly
    /// on the fill–drain closed form `(m+p-1)·F`.
    #[test]
    fn forward_only_schedules_validate_and_execute(p in 2u32..=8, m in 1u32..=12) {
        let s = generate(ScheduleConfig::new(SchemeKind::ForwardOnly, p, m));
        prop_assert!(validate(&s).is_ok());
        let cost = UnitCost::paper_grid();
        let cfg = EmulatorConfig {
            watchdog: std::time::Duration::from_secs(5),
            ..Default::default()
        };
        let emu = mario::cluster::run(&s, &cost, cfg).unwrap();
        let ev = mario::cluster::run(
            &s,
            &cost,
            EmulatorConfig {
                backend: EmulatorBackend::Event,
                ..cfg
            },
        )
        .unwrap();
        let expect = (m as u64 + p as u64 - 1) * 1_000;
        prop_assert_eq!(emu.total_ns, expect, "thread makespan off at p={} m={}", p, m);
        prop_assert_eq!(ev.total_ns, expect, "event makespan off at p={} m={}", p, m);
        prop_assert_eq!(&ev.device_clocks, &emu.device_clocks);
    }
}

// The whole serving loop — Poisson arrivals, greedy batching, release
// gating, deadline accounting, the latency digest — agrees bit-for-bit
// between the DP simulator, the thread emulator and the event executor,
// pristine or under seeded absorbable degradation (the emulators run the
// fault plan itself, the simulator runs the derived perturbation
// profile), across pipeline depths and batching policies.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn serving_three_way_parity(
        p in 2u32..=6,
        count in 1u32..=14,
        trace_seed in 0u64..512,
        max_batch in 1u32..=4,
        wait_sel in 0usize..3,
        fault_sel in 0u64..1024,
    ) {
        use mario::cluster::{
            form_batches, poisson_arrivals, serve, BatchPolicy, FaultPlan, RetryPolicy,
            ServeConfig,
        };

        let cost = UnitCost::paper_grid();
        let requests = poisson_arrivals(trace_seed, count, 1_500, 40_000);
        let batch = BatchPolicy {
            max_batch,
            max_wait_ns: [0, 700, 2_500][wait_sel],
        };
        let build =
            move |micros: u32| generate(ScheduleConfig::new(SchemeKind::ForwardOnly, p, micros));
        // Absorbable faults are drawn against the first (and, with no
        // failures, only) attempt's schedule.
        let first = build(form_batches(&requests, batch).len() as u32);
        // One case in four serves a pristine cluster; the rest draw a
        // seeded absorbable fault (straggler or slow link).
        let plan = if fault_sel % 4 == 0 {
            FaultPlan::none()
        } else {
            FaultPlan::single_absorbable(fault_sel, &first)
        };
        prop_assert!(plan.is_absorbable());
        let cfg = ServeConfig {
            batch,
            retry: RetryPolicy::default(),
            emulator: EmulatorConfig {
                record_spans: true,
                ..Default::default()
            },
        };
        let th = serve(build, &cost, &cfg, &plan, &requests).unwrap();
        let ev = serve(
            build,
            &cost,
            &ServeConfig {
                emulator: EmulatorConfig {
                    backend: EmulatorBackend::Event,
                    ..cfg.emulator
                },
                ..cfg
            },
            &plan,
            &requests,
        )
        .unwrap();
        let sim = mario::core::simulate_serving(
            build,
            &cost,
            1,
            &plan.perturbation_profile(),
            batch,
            RetryPolicy::default(),
            &requests,
        )
        .unwrap();

        // Absorbable degradation never costs an attempt, and every
        // request completes.
        prop_assert!(th.fault_log.is_empty());
        prop_assert!(th.completions.iter().all(|c| c.is_some()));
        prop_assert_eq!(&th.completions, &ev.completions,
            "event serve diverged at p={} count={} batch={:?} fault={:?}",
            p, count, batch, plan.faults);
        prop_assert_eq!(&th.completions, &sim.completions,
            "simulated serve diverged at p={} count={} batch={:?} fault={:?}",
            p, count, batch, plan.faults);
        prop_assert_eq!(&th.serving, &ev.serving);
        prop_assert_eq!(&th.serving, &sim.serving);
        let (tr, er, sr) = (
            th.report.unwrap(),
            ev.report.unwrap(),
            sim.report.unwrap(),
        );
        prop_assert_eq!(&tr.device_clocks, &er.device_clocks);
        prop_assert_eq!(&tr.device_clocks, &sr.device_clocks);
        // The final attempt's span graph agrees three ways under the
        // serving ingress gate, and the attributed critical path tiles
        // its makespan (release waits surface as exogenous bubbles).
        let th_spans = tr.spans.as_ref().expect("thread serve recorded spans");
        let ev_spans = er.spans.as_ref().expect("event serve recorded spans");
        let sim_spans = sr.spans.as_ref().expect("sim serve carries spans");
        prop_assert_eq!(ev_spans, th_spans,
            "serving span graph diverged (event vs thread) at p={} count={}", p, count);
        prop_assert_eq!(sim_spans, th_spans,
            "serving span graph diverged (sim vs thread) at p={} count={}", p, count);
        let schedule = build(th.batches.len() as u32);
        let crit = mario::core::critpath::analyze(&schedule, sim_spans);
        prop_assert_eq!(crit.breakdown.total(), tr.total_ns);
    }
}

// Error-sentinel recovery: an injected mid-serve crash drains the pipe
// with no deadlock on both emulator backends, both attribute the failure
// to the same fault at the same virtual time, and the stranded requests
// are retried to completion within policy with identical completion
// times and digests.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn crash_sentinel_serving_matches_across_backends(
        p in 2u32..=6,
        count in 2u32..=12,
        trace_seed in 0u64..256,
        site in 0u32..4096,
    ) {
        use mario::cluster::{
            form_batches, poisson_arrivals, serve, BatchPolicy, FaultKind, FaultPlan,
            RetryPolicy, ServeConfig,
        };

        let cost = UnitCost::paper_grid();
        let requests = poisson_arrivals(trace_seed, count, 1_500, 60_000);
        let batch = BatchPolicy::default();
        let build =
            move |micros: u32| generate(ScheduleConfig::new(SchemeKind::ForwardOnly, p, micros));
        let first = build(form_batches(&requests, batch).len() as u32);
        let device = DeviceId(site % p);
        let len = first.programs()[device.index()].len() as u32;
        prop_assume!(len > 0);
        let plan = FaultPlan::none().with(FaultKind::Crash {
            device,
            pc: ((site * 7) % len) as usize,
        });
        let retry = RetryPolicy {
            max_retries: 3,
            backoff_ns: 1_000,
            drop_missed: false,
        };
        let cfg = ServeConfig {
            emulator: EmulatorConfig {
                watchdog: std::time::Duration::from_millis(300),
                ..Default::default()
            },
            batch,
            retry,
        };
        let th = serve(build, &cost, &cfg, &plan, &requests).unwrap();
        let ev = serve(
            build,
            &cost,
            &ServeConfig {
                emulator: EmulatorConfig {
                    backend: EmulatorBackend::Event,
                    ..cfg.emulator
                },
                ..cfg
            },
            &plan,
            &requests,
        )
        .unwrap();

        prop_assert!(!th.fault_log.is_empty(),
            "crash at pc {} on {:?} never fired (p={} count={})",
            ((site * 7) % len) as usize, device, p, count);
        prop_assert_eq!(&th.fault_log, &ev.fault_log,
            "fault attribution diverged at p={} count={} site={}", p, count, site);
        prop_assert!(th.completions.iter().all(|c| c.is_some()),
            "stranded request not retried to completion at p={} count={} site={}",
            p, count, site);
        prop_assert_eq!(&th.completions, &ev.completions,
            "post-recovery completions diverged at p={} count={} site={}", p, count, site);
        prop_assert_eq!(&th.serving, &ev.serving);
        prop_assert_eq!(th.serving.completed, count);
        prop_assert!(th.serving.attempts <= 1 + retry.max_retries);
    }
}

// The closed-form bubble fraction (p-1)/(m+p-1) of the fill–drain
// schedule, pinned in integer arithmetic through the full serving path
// (mirrors `scale`'s 1F1B closed-form gate): m single-request batches
// all released at t = 0 make the makespan exactly (m+p-1)·F.
#[test]
fn forward_only_bubble_fraction_closed_form() {
    use mario::cluster::{serve, BatchPolicy, FaultPlan, Request, RetryPolicy, ServeConfig};

    for (p, m) in [(2u32, 4u64), (4, 8), (6, 3)] {
        let requests: Vec<Request> = (0..m)
            .map(|i| Request {
                id: i as u32,
                arrival_ns: 0,
                deadline_ns: 1_000_000,
            })
            .collect();
        let cfg = ServeConfig {
            batch: BatchPolicy {
                max_batch: 1,
                max_wait_ns: 0,
            },
            retry: RetryPolicy::default(),
            ..Default::default()
        };
        let out = serve(
            move |micros| generate(ScheduleConfig::new(SchemeKind::ForwardOnly, p, micros)),
            &UnitCost::paper_grid(),
            &cfg,
            &FaultPlan::none(),
            &requests,
        )
        .unwrap();
        assert_eq!(out.serving.completed as u64, m);
        let total = out.serving.makespan_ns;
        assert_eq!(total, (m + p as u64 - 1) * 1_000, "p={p} m={m}");
        // Bubble fraction check, cross-multiplied to stay in integers:
        // (total − m·F) / total == (p−1) / (m+p−1).
        assert_eq!(
            (total - m * 1_000) * (m + p as u64 - 1),
            (p as u64 - 1) * total,
            "p={p} m={m}"
        );
    }
}
