//! End-to-end tests of the `mario` CLI: generate → simulate → emulate
//! through the text format, plus error handling.

use std::process::Command;

fn mario() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mario"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("mario-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{}-{name}", std::process::id()))
}

#[test]
fn generate_emits_parseable_schedules() {
    let out = mario()
        .args(["generate", "--scheme", "V", "--devices", "4", "--micros", "8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    let s = mario::ir::from_text(&text).unwrap();
    assert_eq!(s.devices(), 4);
    assert_eq!(s.micros, 8);
    mario::ir::validate(&s).unwrap();
}

#[test]
fn generate_mario_flag_applies_checkpointing() {
    let out = mario()
        .args([
            "generate", "--scheme", "V", "--devices", "4", "--micros", "8", "--mario",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let s = mario::ir::from_text(&String::from_utf8(out.stdout).unwrap()).unwrap();
    assert!(s.has_checkpointing());
}

#[test]
fn generate_simulate_emulate_round_trip() {
    let path = tmp("roundtrip.txt");
    let out = mario()
        .args([
            "generate",
            "--scheme",
            "X",
            "--devices",
            "4",
            "--micros",
            "8",
            "--mario",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let sim = mario()
        .args([
            "simulate",
            "--schedule",
            path.to_str().unwrap(),
            "--model",
            "gpt3-1.6b",
            "--mbs",
            "2",
            "--viz",
        ])
        .output()
        .unwrap();
    assert!(sim.status.success(), "{}", String::from_utf8_lossy(&sim.stderr));
    let text = String::from_utf8(sim.stdout).unwrap();
    assert!(text.contains("iteration:"), "{text}");
    assert!(text.contains("peak memory:"));
    assert!(text.contains("d0:"), "viz row missing: {text}");

    let emu = mario()
        .args([
            "emulate",
            "--schedule",
            path.to_str().unwrap(),
            "--model",
            "gpt3-1.6b",
            "--mbs",
            "2",
            "--jitter",
            "0.02",
        ])
        .output()
        .unwrap();
    assert!(emu.status.success(), "{}", String::from_utf8_lossy(&emu.stderr));
    assert!(String::from_utf8_lossy(&emu.stdout).contains("emulated devices"));
}

#[test]
fn simulate_writes_chrome_traces() {
    let sched = tmp("trace-sched.txt");
    let trace = tmp("trace.json");
    assert!(mario()
        .args([
            "generate", "--scheme", "V", "--devices", "2", "--micros", "4", "--out",
            sched.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    assert!(mario()
        .args([
            "simulate",
            "--schedule",
            sched.to_str().unwrap(),
            "--model",
            "gpt3-1.6b",
            "--mbs",
            "1",
            "--trace",
            trace.to_str().unwrap(),
        ])
        .status()
        .unwrap()
        .success());
    let json = std::fs::read_to_string(&trace).unwrap();
    assert!(json.contains("\"traceEvents\""));
    assert!(json.contains("\"cat\":\"forward\""));
}

#[test]
fn optimize_produces_a_runnable_schedule() {
    let path = tmp("optimized.txt");
    let out = mario()
        .args([
            "optimize", "--model", "gpt3-1.6b", "--devices", "4", "--gbs", "16",
            "--scheme", "V", "--out", path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("best: V-"), "{stderr}");
    let s = mario::ir::from_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
    mario::ir::validate(&s).unwrap();
}

#[test]
fn bad_input_fails_with_usage() {
    let out = mario().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown command"));
    assert!(err.contains("USAGE"));

    let out = mario()
        .args(["generate", "--scheme", "Q", "--devices", "2", "--micros", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown scheme"));
}
