//! Cross-crate end-to-end scenarios: the full `optimize → run` loop, OOM
//! behaviour, fault attribution, and model-scale shape checks.

use mario::prelude::*;
use mario_core::passes::PreposeOptions;

const GIB: u64 = 1 << 30;

#[test]
fn listing1_flow_for_every_preset_model() {
    for model in [
        ModelConfig::gpt3_1_6b(),
        ModelConfig::llama2_3b(),
    ] {
        let conf = MarioConfig::auto(8, 32, 40 * GIB);
        let gpu = GpuSpec::a100_40g();
        let opt = mario::core::optimize(&conf, &model, &gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", model.name));
        validate(&opt.schedule).unwrap_or_else(|e| panic!("{}: {e:?}", model.name));
        let report = mario::core::run(
            &opt,
            EmulatorConfig {
                mem_capacity: Some(conf.memory_per_device),
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", model.name));
        assert!(report.total_ns > 0);
        assert!(
            report.max_peak_mem() <= conf.memory_per_device,
            "{}: tuned schedule exceeded the budget",
            model.name
        );
    }
}

#[test]
fn oversized_model_is_rejected_not_mislabeled() {
    // GPT3-13B on 4 tiny-memory devices: nothing fits; the tuner must say
    // so instead of returning a bogus config.
    let conf = MarioConfig::auto(4, 16, 4 * GIB);
    let err = mario::core::optimize(&conf, &ModelConfig::gpt3_13b(), &GpuSpec::a100_40g())
        .unwrap_err();
    assert_eq!(err, mario::core::TuneError::NoFeasibleConfig);
}

#[test]
fn emulator_attributes_oom_to_the_hungriest_device() {
    // 1F1B without checkpointing: device 0 buffers the most activations,
    // so a tight budget must fault there first.
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(SchemeKind::OneFOneB, 4);
    let setup = TrainSetup::pipeline(model, gpu, topo, 2);
    let cost = AnalyticCost::new(&setup);
    let schedule = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 4, 32));

    // Pick a budget between device 3's needs and device 0's needs.
    let mem = simulate_memory(&schedule, &cost, None);
    let budget = (mem.peak[0] + mem.peak[3]) / 2;
    let err = mario::cluster::run(
        &schedule,
        &cost,
        EmulatorConfig {
            mem_capacity: Some(budget),
            watchdog: std::time::Duration::from_millis(500),
            ..Default::default()
        },
    )
    .unwrap_err();
    assert!(err.is_oom(), "{err}");
    assert_eq!(err.device(), DeviceId(0), "{err}");
}

#[test]
fn near_zero_cost_at_13b_scale() {
    // The title claim, end to end on the emulator: V-ovlp on LLaMA2-13B /
    // 32 devices runs within ~10% of V-base (paper: 94.7%), while using a
    // fraction of the memory.
    let model = ModelConfig::llama2_13b();
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(SchemeKind::OneFOneB, 32);
    let setup = TrainSetup::pipeline(model, gpu, topo, 2);
    let cost = AnalyticCost::new(&setup);
    let base = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 32, 64));
    let mut ovlp = base.clone();
    run_graph_tuner(
        &mut ovlp,
        &cost,
        GraphTunerOptions {
            prepose_opts: PreposeOptions {
                max_rounds: 2,
                ..Default::default()
            },
            ..GraphTunerOptions::mario()
        },
    );

    let run = |s: &Schedule| {
        mario::cluster::run(s, &cost, EmulatorConfig::default())
            .unwrap()
            .iter_ns as f64
    };
    let t_base = run(&base);
    let t_ovlp = run(&ovlp);
    assert!(
        t_ovlp / t_base < 1.12,
        "ovlp should be near zero-cost: {:.1}% slower",
        (t_ovlp / t_base - 1.0) * 100.0
    );

    let m_base = simulate_memory(&base, &cost, None);
    let m_ovlp = simulate_memory(&ovlp, &cost, None);
    assert!(m_ovlp.max_peak() * 3 < m_base.max_peak());
}

#[test]
fn profiled_cost_drives_the_full_pipeline() {
    // Profiling -> estimators -> simulator -> tuner decisions, as in §5.2.
    let model = ModelConfig::gpt3_1_6b();
    let gpu = GpuSpec::a100_40g();
    let topo = Topology::new(SchemeKind::OneFOneB, 8);
    let setup = TrainSetup::pipeline(model, gpu, topo, 2);
    let (profiled, report) =
        mario::model::profile_and_build(&setup, mario::model::ProfilerConfig::default());
    assert!(report.fwd.a > 0.0);

    let schedule = generate(ScheduleConfig::new(SchemeKind::OneFOneB, 8, 32));
    let t = simulate_timeline(&schedule, &profiled, 1).unwrap();
    let analytic = AnalyticCost::new(&setup);
    let t2 = simulate_timeline(&schedule, &analytic, 1).unwrap();
    let rel = (t.total_ns as f64 - t2.total_ns as f64).abs() / t2.total_ns as f64;
    assert!(rel < 0.10, "profiled vs analytic diverge by {:.1}%", rel * 100.0);
}

#[test]
fn visualization_round_trip() {
    let conf = MarioConfig::auto(4, 16, 40 * GIB);
    let opt = mario::core::optimize(&conf, &ModelConfig::gpt3_1_6b(), &GpuSpec::a100_40g())
        .unwrap();
    let sim = opt.simulate();
    let ascii = mario::core::render_ascii(
        &sim.timeline,
        mario::core::VizOptions {
            ns_per_cell: sim.timeline.total_ns / 100 + 1,
            show_micro_ids: false,
        },
    );
    assert_eq!(ascii.lines().count() as u32, opt.evaluation.candidate.pp);
    let svg = mario::core::render_svg(
        &sim.timeline,
        mario::core::VizOptions {
            ns_per_cell: sim.timeline.total_ns / 500 + 1,
            show_micro_ids: false,
        },
    );
    assert!(svg.contains("<rect"));
}

#[test]
fn schedules_serialize_round_trip() {
    // Schedules are the AOT artifact Mario hands to the runtime; they must
    // survive serialization (serde_json via serde's derives is not in the
    // dependency set, so exercise the IR's own equality instead).
    let s = generate(ScheduleConfig::new(SchemeKind::Chimera, 4, 8));
    let cloned = s.clone();
    assert_eq!(s, cloned);
    // Programs are independently addressable and order-stable.
    for d in 0..4u32 {
        assert_eq!(
            s.program(DeviceId(d)).instrs(),
            cloned.program(DeviceId(d)).instrs()
        );
    }
}
